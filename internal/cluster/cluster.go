// Package cluster assembles complete simulated testbeds: a client cluster
// (netsim network + per-node buses + MPI fabric) connected to an SRB
// server with a metered storage device — one package-level constructor per
// testbed of Section 5.
package cluster

import (
	"net"

	"semplar/internal/adio"
	"semplar/internal/core"
	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
	"semplar/internal/trace"
)

// Spec describes one testbed: the WAN profile of the client cluster and
// the storage device behind the SRB server.
type Spec struct {
	Name    string
	Profile netsim.Profile
	Device  storage.DeviceSpec
}

// Scaled accelerates the whole testbed by f (see netsim.Profile.Scaled).
func (s Spec) Scaled(f float64) Spec {
	s.Profile = s.Profile.Scaled(f)
	s.Device = s.Device.Scaled(f)
	return s
}

// orionDevice models the SRB server's storage tier: reads are served
// mostly from cache/disk arrays, writes must commit, so the write rate is
// the tighter one — the asymmetry behind Figure 8's read gain exceeding
// its write gain.
func orionDevice() storage.DeviceSpec {
	return storage.DeviceSpec{
		Name:      "orion-array",
		ReadRate:  200 * netsim.MBps,
		WriteRate: 60 * netsim.MBps,
	}
}

// DAS2 is the Vrije Universiteit testbed.
func DAS2() Spec { return Spec{Name: "DAS-2", Profile: netsim.DAS2(), Device: orionDevice()} }

// OSC is the Ohio Supercomputer Center P4 testbed (NAT-fronted).
func OSC() Spec { return Spec{Name: "OSC", Profile: netsim.OSC(), Device: orionDevice()} }

// TGNCSA is the NCSA TeraGrid testbed.
func TGNCSA() Spec { return Spec{Name: "TG-NCSA", Profile: netsim.TGNCSA(), Device: orionDevice()} }

// Specs returns the three paper testbeds in presentation order.
func Specs() []Spec { return []Spec{DAS2(), OSC(), TGNCSA()} }

// Testbed is a running simulated deployment: one SRB server, one client
// cluster, and per-node ADIO registries whose "srb" driver dials through
// that node's shaped path.
type Testbed struct {
	Spec   Spec
	Net    *netsim.Network
	Server *srb.Server
}

// New brings up a testbed with the given number of client nodes.
func New(spec Spec, nodes int) *Testbed {
	return &Testbed{
		Spec:   spec,
		Net:    netsim.NewNetwork(spec.Profile, nodes),
		Server: srb.NewMemServer(spec.Device),
	}
}

// SetTracer wires tr into the testbed's fabric-level instrumentation:
// the simulated network's connection gauge and transmit counters, and the
// SRB server's dispatch spans. Client-side tracing rides in on the
// SRBFSConfig.Tracer passed to Registry. Call before dialing.
func (tb *Testbed) SetTracer(tr *trace.Tracer) {
	tb.Net.SetTracer(tr)
	tb.Server.SetTracer(tr)
}

// Dialer returns a core.DialFunc bound to one client node: every call
// opens a fresh shaped connection from that node to the server.
func (tb *Testbed) Dialer(node int) core.DialFunc {
	return func() (net.Conn, error) {
		c, s := tb.Net.Dial(node)
		go tb.Server.ServeConn(s)
		return c, nil
	}
}

// Registry returns an ADIO registry for one node, with the SEMPLAR "srb"
// driver (configured with cfg basics) and a private "mem" local FS.
func (tb *Testbed) Registry(node int, cfg core.SRBFSConfig) *adio.Registry {
	cfg.Dial = tb.Dialer(node)
	fs, err := core.NewSRBFS(cfg)
	if err != nil {
		// Only possible with a nil Dial, which we just set.
		panic(err)
	}
	reg := &adio.Registry{}
	reg.Register(fs)
	reg.Register(adio.NewMemFS())
	return reg
}

// Fabric is the MPI interconnect of the client cluster.
func (tb *Testbed) Fabric() netsim.Fabric { return tb.Net.Interconnect() }
