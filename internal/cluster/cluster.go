// Package cluster assembles complete simulated testbeds: a client cluster
// (netsim network + per-node buses + MPI fabric) connected to an SRB
// server with a metered storage device — one package-level constructor per
// testbed of Section 5.
package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"semplar/internal/adio"
	"semplar/internal/core"
	"semplar/internal/mcat"
	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/storage"
	"semplar/internal/tenant"
	"semplar/internal/trace"
)

// Spec describes one testbed: the WAN profile of the client cluster and
// the storage device behind the SRB server.
type Spec struct {
	Name    string
	Profile netsim.Profile
	Device  storage.DeviceSpec
}

// Scaled accelerates the whole testbed by f (see netsim.Profile.Scaled).
func (s Spec) Scaled(f float64) Spec {
	s.Profile = s.Profile.Scaled(f)
	s.Device = s.Device.Scaled(f)
	return s
}

// orionDevice models the SRB server's storage tier: reads are served
// mostly from cache/disk arrays, writes must commit, so the write rate is
// the tighter one — the asymmetry behind Figure 8's read gain exceeding
// its write gain.
func orionDevice() storage.DeviceSpec {
	return storage.DeviceSpec{
		Name:      "orion-array",
		ReadRate:  200 * netsim.MBps,
		WriteRate: 60 * netsim.MBps,
	}
}

// DAS2 is the Vrije Universiteit testbed.
func DAS2() Spec { return Spec{Name: "DAS-2", Profile: netsim.DAS2(), Device: orionDevice()} }

// OSC is the Ohio Supercomputer Center P4 testbed (NAT-fronted).
func OSC() Spec { return Spec{Name: "OSC", Profile: netsim.OSC(), Device: orionDevice()} }

// TGNCSA is the NCSA TeraGrid testbed.
func TGNCSA() Spec { return Spec{Name: "TG-NCSA", Profile: netsim.TGNCSA(), Device: orionDevice()} }

// Specs returns the three paper testbeds in presentation order.
func Specs() []Spec { return []Spec{DAS2(), OSC(), TGNCSA()} }

// ErrServerDown is the transient dial error while the testbed's server is
// killed and not yet restarted. srb.Retryable classifies it retryable, so
// clients ride out a crash window with their normal backoff.
var ErrServerDown = errors.New("cluster: server down")

// Testbed is a running simulated deployment: one or more SRB server
// shards, one client cluster, and per-node ADIO registries whose "srb"
// driver dials through that node's shaped path.
//
// Every shard is an independent crashable fault domain: KillShard models
// one shard process dying (its connections reset, its journaling stops),
// RestartShard brings a fresh generation up over the same storage,
// rebuilding that shard's MCAT from its journal. The single-server API
// (KillServer, RestartServer, ActiveServer, Dialer) operates on shard 0,
// so a classic one-server testbed is just a one-shard fleet. The Server
// field always points at shard 0's current generation; code that must
// survive restarts uses ActiveServer/ActiveShard.
type Testbed struct {
	Spec Spec
	Net  *netsim.Network
	// Server is shard 0's current generation. Read it directly only in
	// single-threaded test setup/teardown; concurrent code must use
	// ActiveServer (the field is rewritten by RestartServer).
	Server *srb.Server

	shards []*shardState    // immutable slice; each element mu-guarded
	placer *mcat.Placer     // MCAT placement service, shared by all nodes
	pjour  *mcat.MemJournal // placement journal behind placer

	mu      sync.Mutex
	limits  srb.Limits // guarded by mu; applied to every generation
	tracer  *trace.Tracer
	tenants *tenant.Registry // guarded by mu; applied to every generation
}

// shardState is one server shard: its storage and journal survive crashes,
// the srv pointer is the current process generation (nil while killed).
type shardState struct {
	name    string
	store   storage.Store
	journal *mcat.MemJournal
	srv     *srb.Server // current generation, nil while killed; Testbed.mu serializes access
}

// New brings up a single-server testbed with the given number of client
// nodes — a one-shard fleet with no replication.
func New(spec Spec, nodes int) *Testbed {
	return NewFederated(spec, nodes, 1, 1)
}

// NewFederated brings up a fleet of shards independent SRB servers behind
// one simulated network, plus an MCAT placer (journaled, replica-set size
// replicas) that directs stripe placement across them. Shard i is named
// "s<i>"; each shard gets its own metered device, modeling separate
// storage arrays rather than a shared one.
func NewFederated(spec Spec, nodes, shards, replicas int) *Testbed {
	if shards < 1 {
		shards = 1
	}
	tb := &Testbed{
		Spec:  spec,
		Net:   netsim.NewNetwork(spec.Profile, nodes),
		pjour: mcat.NewMemJournal(),
	}
	tb.placer = mcat.NewPlacer(replicas)
	for i := 0; i < shards; i++ {
		var st storage.Store = storage.NewMemStore()
		d := spec.Device
		if d.ReadRate > 0 || d.WriteRate > 0 || d.OpLatency > 0 {
			st = storage.WithDevice(st, d)
		}
		sh := &shardState{
			name:    fmt.Sprintf("s%d", i),
			store:   st,
			journal: mcat.NewMemJournal(),
		}
		tb.shards = append(tb.shards, sh)
		tb.placer.AddServer(sh.name)
	}
	tb.placer.SetJournal(tb.pjour)
	for _, sh := range tb.shards {
		sh.srv = tb.newServer(sh, tb.limits, tb.tracer, tb.tenants)
	}
	tb.Server = tb.shards[0].srv
	return tb
}

// newServer builds one server generation over a shard's store, replays
// the shard journal into its catalog and attaches the journal for
// subsequent mutations. Resources are re-registered (not journaled),
// mirroring a real daemon's startup order: config, replay, serve. The
// mu-guarded limits/tracer are passed in by the caller rather than read
// here.
func (tb *Testbed) newServer(sh *shardState, limits srb.Limits, tr *trace.Tracer, reg *tenant.Registry) *srb.Server {
	srv := srb.NewServer()
	srv.AddResource("mem", "memory", sh.store)
	srv.Catalog().Replay(sh.journal.Records())
	srv.Catalog().SetJournal(sh.journal)
	srv.SetLimits(limits)
	if tr != nil {
		srv.SetTracer(tr)
	}
	if reg != nil {
		// The registry is shared across generations (a config file, not
		// process state), so a restarted shard keeps enforcing the same
		// bucket balances and the usage replayed from the journal lands
		// under the same quotas.
		srv.SetTenants(reg)
	}
	return srv
}

// SetTracer wires tr into the testbed's fabric-level instrumentation:
// the simulated network's connection gauge and transmit counters, and the
// SRB server's dispatch spans. Client-side tracing rides in on the
// SRBFSConfig.Tracer passed to Registry. Call before dialing.
func (tb *Testbed) SetTracer(tr *trace.Tracer) {
	tb.Net.SetTracer(tr)
	tb.mu.Lock()
	tb.tracer = tr
	var up []*srb.Server
	for _, sh := range tb.shards {
		if sh.srv != nil {
			up = append(up, sh.srv)
		}
	}
	tb.mu.Unlock()
	for _, srv := range up {
		srv.SetTracer(tr)
	}
}

// SetServerLimits applies admission-control limits to every running shard
// and every future generation. Call before serving traffic.
func (tb *Testbed) SetServerLimits(l srb.Limits) {
	tb.mu.Lock()
	tb.limits = l
	var up []*srb.Server
	for _, sh := range tb.shards {
		if sh.srv != nil {
			up = append(up, sh.srv)
		}
	}
	tb.mu.Unlock()
	for _, srv := range up {
		srv.SetLimits(l)
	}
}

// SetTenants attaches a tenant registry to every running shard and every
// future generation, making authentication (and per-tenant rate limits /
// quotas) mandatory fleet-wide. Call before serving traffic.
func (tb *Testbed) SetTenants(reg *tenant.Registry) {
	tb.mu.Lock()
	tb.tenants = reg
	var up []*srb.Server
	for _, sh := range tb.shards {
		if sh.srv != nil {
			up = append(up, sh.srv)
		}
	}
	tb.mu.Unlock()
	for _, srv := range up {
		srv.SetTenants(reg)
	}
}

// Shards reports the fleet size.
func (tb *Testbed) Shards() int { return len(tb.shards) }

// ShardNames returns the endpoint names the placer knows the fleet by.
func (tb *Testbed) ShardNames() []string {
	names := make([]string, len(tb.shards))
	for i, sh := range tb.shards {
		names[i] = sh.name
	}
	return names
}

// Placer exposes the testbed's MCAT placement service (shared by every
// node, like the real MCAT).
func (tb *Testbed) Placer() *mcat.Placer { return tb.placer }

// PlacementJournal exposes the placement journal (tests inspect it).
func (tb *Testbed) PlacementJournal() *mcat.MemJournal { return tb.pjour }

// ShardStore exposes shard i's backing store (tests corrupt and inspect
// replicas directly).
func (tb *Testbed) ShardStore(i int) storage.Store { return tb.shards[tb.clampShard(i)].store }

func (tb *Testbed) clampShard(i int) int {
	if i < 0 || i >= len(tb.shards) {
		return 0
	}
	return i
}

// ActiveServer returns shard 0's current generation, or nil while killed.
func (tb *Testbed) ActiveServer() *srb.Server { return tb.ActiveShard(0) }

// ActiveShard returns shard i's current generation, or nil while killed.
func (tb *Testbed) ActiveShard(i int) *srb.Server {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.shards[tb.clampShard(i)].srv
}

// KillServer crashes shard 0 — the whole server in a one-shard testbed.
// Its catalog is detached from the journal (a dead process writes no more
// metadata), every established connection to it is reset, and dials fail
// with ErrServerDown until RestartServer. The in-memory object store
// survives, standing in for the disk array: bytes that reached storage
// before the crash are still there — data whose metadata was journaled is
// fully recovered, and the client replay path reconciles the rest.
func (tb *Testbed) KillServer() { tb.KillShard(0) }

// RestartServer brings shard 0 back up from its journal. It is a no-op if
// the shard is already running. Clients reconnect through their existing
// retry/reopen flow; nothing client-side knows a restart happened.
func (tb *Testbed) RestartServer() { tb.RestartShard(0) }

// KillShard crashes one shard of the fleet: that shard's catalog detaches
// from its journal, only its connections reset, and only its dials fail —
// the rest of the fleet keeps serving, which is exactly the asymmetry
// federated clients must ride out.
func (tb *Testbed) KillShard(i int) {
	tb.mu.Lock()
	sh := tb.shards[tb.clampShard(i)]
	srv := sh.srv
	sh.srv = nil
	tb.mu.Unlock()
	if srv == nil {
		return // already dead
	}
	srv.Catalog().SetJournal(nil)
	tb.Net.KillShardConns(tb.clampShard(i))
}

// RestartShard brings a fresh generation of one shard up from its
// journal; a no-op while the shard is running.
func (tb *Testbed) RestartShard(i int) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	sh := tb.shards[tb.clampShard(i)]
	if sh.srv != nil {
		return
	}
	sh.srv = tb.newServer(sh, tb.limits, tb.tracer, tb.tenants)
	if tb.clampShard(i) == 0 {
		tb.Server = sh.srv
	}
}

// PartitionShard cuts one shard off the network for d: its established
// connections reset and new dials toward it fail until the window
// elapses. Unlike KillShard the shard process stays alive — its catalog
// keeps journaling — so this is a pure network fault, the federated
// analogue of Partition.
func (tb *Testbed) PartitionShard(i int, d time.Duration) {
	tb.Net.PartitionShard(tb.clampShard(i), d)
}

// KillConns implements the chaos Injector verb: reset one node's
// connections without touching the server.
func (tb *Testbed) KillConns(node int) { tb.Net.KillConns(node) }

// Partition implements the chaos Injector verb: cut one node off for d.
func (tb *Testbed) Partition(node int, d time.Duration) { tb.Net.Partition(node, d) }

// LatencySpike implements the chaos Injector verb: network-wide extra
// one-way latency (0 clears).
func (tb *Testbed) LatencySpike(extra time.Duration) { tb.Net.SetLatencySpike(extra) }

var _ netsim.ShardInjector = (*Testbed)(nil)

// Dialer returns a core.DialFunc bound to one client node: every call
// opens a fresh shaped connection from that node to the current server
// generation, failing transiently while the node is partitioned or the
// server is down.
func (tb *Testbed) Dialer(node int) core.DialFunc { return tb.ShardDialer(node, 0) }

// ShardDialer is Dialer toward one shard of the fleet: connections are
// tagged with the shard so shard-scoped faults reset exactly them, and
// dials fail transiently only for that shard's own faults —
// ErrServerDown while it is killed, ErrPartitioned while its
// shard-partition window is open.
func (tb *Testbed) ShardDialer(node, shard int) core.DialFunc {
	return func() (net.Conn, error) {
		if err := tb.Net.DialFault(node); err != nil {
			return nil, err
		}
		if err := tb.Net.ShardDialFault(shard); err != nil {
			return nil, err
		}
		srv := tb.ActiveShard(shard)
		if srv == nil {
			return nil, fmt.Errorf("%w: shard %d", ErrServerDown, shard)
		}
		c, s := tb.Net.DialShard(node, shard)
		go srv.ServeConn(s)
		return c, nil
	}
}

// FedEndpoints returns the fleet as federation endpoints for one client
// node, in shard order, named as the placer knows them.
func (tb *Testbed) FedEndpoints(node int) []core.Endpoint {
	eps := make([]core.Endpoint, len(tb.shards))
	for i, sh := range tb.shards {
		eps[i] = core.Endpoint{Name: sh.name, Dial: tb.ShardDialer(node, i)}
	}
	return eps
}

// Registry returns an ADIO registry for one node, with the SEMPLAR "srb"
// driver (configured with cfg basics) and a private "mem" local FS.
func (tb *Testbed) Registry(node int, cfg core.SRBFSConfig) *adio.Registry {
	cfg.Dial = tb.Dialer(node)
	fs, err := core.NewSRBFS(cfg)
	if err != nil {
		// Only possible with a nil Dial, which we just set.
		panic(err)
	}
	reg := &adio.Registry{}
	reg.Register(fs)
	reg.Register(adio.NewMemFS())
	return reg
}

// Fabric is the MPI interconnect of the client cluster.
func (tb *Testbed) Fabric() netsim.Fabric { return tb.Net.Interconnect() }

// Journal exposes shard 0's MCAT journal (tests inspect it).
func (tb *Testbed) Journal() *mcat.MemJournal { return tb.shards[0].journal }
