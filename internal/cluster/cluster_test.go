package cluster

import (
	"testing"

	"semplar/internal/adio"
	"semplar/internal/core"
	"semplar/internal/mpi"
	"semplar/internal/mpiio"
)

func TestSpecsScaled(t *testing.T) {
	for _, s := range Specs() {
		sc := s.Scaled(10)
		if sc.Profile.RTT() != s.Profile.RTT()/10 {
			t.Errorf("%s: RTT not scaled", s.Name)
		}
		if sc.Device.WriteRate != s.Device.WriteRate*10 {
			t.Errorf("%s: device not scaled", s.Name)
		}
	}
	if OSC().Profile.NATRate == 0 {
		t.Fatal("OSC must be NAT-fronted")
	}
	if DAS2().Profile.RTT() <= TGNCSA().Profile.RTT() {
		t.Fatal("DAS-2 must be the high-latency testbed")
	}
}

func TestTestbedEndToEnd(t *testing.T) {
	tb := New(DAS2().Scaled(200), 3)
	if err := tb.Server.MkdirAll("/runs"); err != nil {
		t.Fatal(err)
	}
	err := mpi.RunOn(3, tb.Fabric(), func(c *mpi.Comm) error {
		reg := tb.Registry(c.Rank(), core.SRBFSConfig{})
		f, err := mpiio.Open(c, reg, "srb:/runs/shared", adio.O_RDWR|adio.O_CREATE, nil)
		if err != nil {
			return err
		}
		defer f.Close()
		data := make([]byte, 4096)
		for i := range data {
			data[i] = byte(c.Rank())
		}
		if _, err := f.WriteAt(data, int64(c.Rank())*4096); err != nil {
			return err
		}
		c.Barrier()
		buf := make([]byte, 3*4096)
		if _, err := f.ReadAt(buf, 0); err != nil {
			return err
		}
		for r := 0; r < 3; r++ {
			if buf[r*4096] != byte(r) {
				t.Errorf("rank %d: stripe %d corrupted", c.Rank(), r)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := tb.Server.Stats()
	if st.BytesWritten != 3*4096 {
		t.Fatalf("server saw %d bytes written", st.BytesWritten)
	}
}

func TestRegistryHasDrivers(t *testing.T) {
	tb := New(TGNCSA().Scaled(500), 1)
	reg := tb.Registry(0, core.SRBFSConfig{Streams: 2})
	ds := reg.Drivers()
	if len(ds) != 2 || ds[0] != "mem" || ds[1] != "srb" {
		t.Fatalf("drivers = %v", ds)
	}
}
