package cluster

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"semplar/internal/adio"
	"semplar/internal/core"
	"semplar/internal/netsim"
	"semplar/internal/srb"
)

// fastSpec is an unshaped testbed for functional fault tests.
func fastSpec() Spec {
	return Spec{Name: "fast", Profile: netsim.Loopback()}
}

func retryingConfig() core.SRBFSConfig {
	return core.SRBFSConfig{
		Retry: srb.RetryPolicy{
			MaxAttempts: 10,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
			Multiplier:  2,
			OpTimeout:   5 * time.Second,
		},
		ReconnectBudget: 64,
	}
}

func TestKillRestartPreservesCatalog(t *testing.T) {
	tb := New(fastSpec(), 1)
	if err := tb.Server.MkdirAll("/runs"); err != nil {
		t.Fatal(err)
	}

	cfg := retryingConfig()
	cfg.Dial = tb.Dialer(0)
	fs, err := core.NewSRBFS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/runs/persist", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("metadata outlives the process "), 100)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	tb.KillServer()
	if tb.ActiveServer() != nil {
		t.Fatal("ActiveServer non-nil after kill")
	}
	if _, err := tb.Dialer(0)(); !errors.Is(err, ErrServerDown) {
		t.Fatalf("dial while down = %v, want ErrServerDown", err)
	}
	if !srb.Retryable(ErrServerDown) {
		t.Fatal("ErrServerDown must be transient for the client retry loop")
	}
	tb.KillServer() // idempotent

	tb.RestartServer()
	srv := tb.ActiveServer()
	if srv == nil {
		t.Fatal("ActiveServer nil after restart")
	}
	// The journaled namespace survived the crash.
	e, err := srv.Catalog().Lookup("/runs/persist")
	if err != nil {
		t.Fatalf("catalog lost the file across restart: %v", err)
	}
	if e.Size != int64(len(payload)) {
		t.Fatalf("recovered size = %d, want %d", e.Size, len(payload))
	}

	// And the bytes read back through a fresh client.
	f2, err := fs.Open("/runs/persist", adio.O_RDONLY, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	got := make([]byte, len(payload))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data corrupted across server restart")
	}
	tb.RestartServer() // idempotent while running
}

func TestClientRidesThroughRestart(t *testing.T) {
	tb := New(fastSpec(), 1)
	if err := tb.Server.MkdirAll("/runs"); err != nil {
		t.Fatal(err)
	}
	cfg := retryingConfig()
	cfg.Dial = tb.Dialer(0)
	fs, err := core.NewSRBFS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/runs/live", adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload := bytes.Repeat([]byte("x"), 8192)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}

	// Crash and restart under the open handle: its streams are severed,
	// but the retry/reconnect flow reopens against the new generation.
	tb.KillServer()
	tb.RestartServer()

	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read across restart: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data corrupted across restart")
	}
}
