package tenant

import (
	"sync"
	"sync/atomic"
	"time"
)

// Bucket is a token bucket driven by an injected clock. Tokens accrue at
// rate per second up to depth; a request of cost n either takes n tokens
// immediately or is refused with the wait until it would fit. There is no
// internal queueing or sleeping — refusal plus a retry-after hint is the
// whole contract, which keeps admission a pure function of (schedule,
// clock) and therefore exactly reproducible on a virtual clock. Compare
// netsim.Limiter, which models a link by *delaying* sends on a virtual
// transmission clock; an admission bucket must instead refuse, because the
// server cannot hold a flooding tenant's requests without letting it queue
// ahead of everyone else.
type Bucket struct {
	rate  float64 // tokens per second
	depth float64 // max tokens

	now func() time.Time

	mu     sync.Mutex
	tokens float64   // guarded by mu
	last   time.Time // guarded by mu; last refill instant
}

// NewBucket returns a full bucket reading time from now.
func NewBucket(rate, depth float64, now func() time.Time) *Bucket {
	if depth < 1 {
		depth = 1
	}
	return &Bucket{rate: rate, depth: depth, now: now, tokens: depth, last: now()}
}

// refillLocked advances the bucket to t. Time going backwards (a virtual
// clock rewound between tests) is treated as no elapsed time rather than
// draining tokens.
func (b *Bucket) refillLocked(t time.Time) {
	//lint:allow guardedfield -- contract: only called with b.mu held
	tokens, last := b.tokens, b.last
	if t.After(last) {
		tokens += t.Sub(last).Seconds() * b.rate
		if tokens > b.depth {
			tokens = b.depth
		}
	}
	//lint:allow guardedfield -- contract: only called with b.mu held
	b.tokens, b.last = tokens, t
}

// Ask reports whether a request of cost n would be admitted at time t,
// without charging. On refusal it returns the wait until n tokens will
// have accrued (floored at 1ms so a retry-after hint is never zero).
func (b *Bucket) Ask(n float64, t time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(t)
	if b.tokens >= n {
		return true, 0
	}
	need := n
	if need > b.depth {
		// A cost larger than the bucket will never fit in one spike;
		// hint one full-depth drain so the client retries after the
		// bucket is as full as it gets.
		need = b.depth
	}
	wait := time.Duration((need - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// Take charges n tokens at time t, allowing the balance to go negative.
// Callers pair it with a successful Ask; the negative-balance tolerance
// makes the two-bucket charge in Tenant.Admit atomic-enough without a
// cross-bucket lock.
func (b *Bucket) Take(n float64, t time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(t)
	b.tokens -= n
}

// Tokens reports the current balance at time t (test hook).
func (b *Bucket) Tokens(t time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(t)
	return b.tokens
}

// atomicCounter is a tiny wrapper so Tenant's counters are copy-proof and
// race-free without exporting sync/atomic details.
type atomicCounter struct{ v int64 }

func (c *atomicCounter) add(d int64)  { atomic.AddInt64(&c.v, d) }
func (c *atomicCounter) load() int64  { return atomic.LoadInt64(&c.v) }
