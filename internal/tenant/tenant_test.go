package tenant

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// virtualClock is a manually advanced clock; zero value starts at a fixed
// epoch so tests are reproducible run-to-run.
type virtualClock struct {
	t time.Time
}

func newVirtualClock() *virtualClock {
	return &virtualClock{t: time.Unix(1_000_000, 0)}
}

func (c *virtualClock) now() time.Time          { return c.t }
func (c *virtualClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBucketBasics(t *testing.T) {
	clk := newVirtualClock()
	b := NewBucket(10, 10, clk.now) // 10 tokens/s, depth 10, starts full

	// Drain the full burst.
	for i := 0; i < 10; i++ {
		ok, _ := b.Ask(1, clk.now())
		if !ok {
			t.Fatalf("op %d refused with full bucket", i)
		}
		b.Take(1, clk.now())
	}
	ok, wait := b.Ask(1, clk.now())
	if ok {
		t.Fatal("11th op admitted from an empty bucket")
	}
	if wait <= 0 {
		t.Fatalf("refusal must carry a positive retry-after, got %v", wait)
	}
	// One token accrues in 100ms at 10/s; the hint should say so.
	if want := 100 * time.Millisecond; wait != want {
		t.Fatalf("retry-after = %v, want %v", wait, want)
	}

	// Advancing by the hinted wait makes the request admissible.
	clk.advance(wait)
	if ok, _ := b.Ask(1, clk.now()); !ok {
		t.Fatal("op still refused after waiting the hinted retry-after")
	}
}

func TestBucketOversizedCost(t *testing.T) {
	clk := newVirtualClock()
	b := NewBucket(10, 10, clk.now)
	// Cost beyond depth can never be admitted in one piece, but the hint
	// must stay finite (one full-depth drain), not grow unboundedly.
	b.Take(10, clk.now())
	ok, wait := b.Ask(100, clk.now())
	if ok {
		t.Fatal("cost 100 admitted against depth 10")
	}
	if wait > time.Second || wait <= 0 {
		t.Fatalf("oversized-cost hint = %v, want (0, 1s]", wait)
	}
}

func TestBucketClockRewindSafe(t *testing.T) {
	clk := newVirtualClock()
	b := NewBucket(10, 10, clk.now)
	b.Take(5, clk.now())
	before := b.Tokens(clk.now())
	clk.t = clk.t.Add(-time.Hour) // rewind
	after := b.Tokens(clk.now())
	if after != before {
		t.Fatalf("clock rewind changed balance: %v -> %v", before, after)
	}
}

// TestAdmitDeterministic replays the same randomized schedule twice on
// fresh registries and demands byte-identical admit/shed/retry-after
// sequences — the property the chaos harness and golden traces rely on.
func TestAdmitDeterministic(t *testing.T) {
	run := func(seed int64) string {
		clk := newVirtualClock()
		reg := NewRegistryClock(clk.now)
		tn := reg.Register("acme", []byte("k"), Limits{OpsPerSec: 50, BytesPerSec: 4096, Burst: 1})
		rng := rand.New(rand.NewSource(seed))
		var log bytes.Buffer
		for i := 0; i < 500; i++ {
			clk.advance(time.Duration(rng.Intn(30)) * time.Millisecond)
			cost := int64(rng.Intn(512))
			ok, wait := tn.Admit(cost, clk.now())
			fmt.Fprintf(&log, "%d %v %v\n", i, ok, wait)
		}
		st := tn.Stats()
		fmt.Fprintf(&log, "admitted=%d shed=%d\n", st.Admitted, st.ShedOps)
		return log.String()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatal("same seed + schedule produced different admit/shed sequences")
	}
	if c := run(43); c == a {
		t.Fatal("different seed produced an identical sequence (schedule not exercising the buckets?)")
	}
}

func TestAdmitChargesBothBucketsOrNeither(t *testing.T) {
	clk := newVirtualClock()
	reg := NewRegistryClock(clk.now)
	// Op bucket generous, byte bucket tiny: a large request must be shed
	// by bytes without burning an op token.
	tn := reg.Register("t", []byte("k"), Limits{OpsPerSec: 1000, BytesPerSec: 10, Burst: 1})
	ok, wait := tn.Admit(1000, clk.now())
	if ok {
		t.Fatal("1000-byte request admitted against a 10-byte bucket")
	}
	if wait <= 0 {
		t.Fatal("shed without retry-after hint")
	}
	if got := tn.Stats(); got.ShedOps != 1 || got.Admitted != 0 {
		t.Fatalf("stats after shed = %+v, want ShedOps=1 Admitted=0", got)
	}
	// The op bucket must still be full: a small request goes straight in.
	if ok, _ := tn.Admit(1, clk.now()); !ok {
		t.Fatal("small request refused — shed request burned tokens it should not have")
	}
}

func TestAdmitUnlimitedTenant(t *testing.T) {
	clk := newVirtualClock()
	reg := NewRegistryClock(clk.now)
	tn := reg.Register("free", []byte("k"), Limits{})
	for i := 0; i < 10000; i++ {
		if ok, _ := tn.Admit(1 << 20, clk.now()); !ok {
			t.Fatal("zero Limits must admit everything")
		}
	}
	if st := tn.Stats(); st.Admitted != 10000 || st.ShedOps != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProofVerify(t *testing.T) {
	key := []byte("super secret")
	reg := NewRegistry()
	reg.Register("acme", key, Limits{})

	if _, err := reg.Authenticate("acme", "alice", Proof(key, "acme", "alice")); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	if _, err := reg.Authenticate("ghost", "alice", Proof(key, "ghost", "alice")); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: got %v, want ErrUnknownTenant", err)
	}
	if _, err := reg.Authenticate("acme", "alice", Proof([]byte("wrong"), "acme", "alice")); !errors.Is(err, ErrBadProof) {
		t.Fatalf("wrong key: got %v, want ErrBadProof", err)
	}
	// Proof binds the user: a proof minted for alice must not open a
	// session as bob.
	if _, err := reg.Authenticate("acme", "bob", Proof(key, "acme", "alice")); !errors.Is(err, ErrBadProof) {
		t.Fatalf("user swap: got %v, want ErrBadProof", err)
	}
	// Proof binds the tenant ID even under the same key.
	reg.Register("acme2", key, Limits{})
	if _, err := reg.Authenticate("acme2", "alice", Proof(key, "acme", "alice")); !errors.Is(err, ErrBadProof) {
		t.Fatalf("tenant swap: got %v, want ErrBadProof", err)
	}
	if _, err := reg.Authenticate("acme", "alice", nil); !errors.Is(err, ErrBadProof) {
		t.Fatalf("nil proof: got %v, want ErrBadProof", err)
	}
}

func TestRegistryNamesAndStats(t *testing.T) {
	reg := NewRegistry()
	reg.Register("b", []byte("k"), Limits{})
	reg.Register("a", []byte("k"), Limits{})
	names := reg.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names() = %v, want [a b]", names)
	}
	all := reg.StatsAll()
	if len(all) != 2 {
		t.Fatalf("StatsAll() has %d entries, want 2", len(all))
	}
}

func TestRegisterResetsBuckets(t *testing.T) {
	clk := newVirtualClock()
	reg := NewRegistryClock(clk.now)
	tn := reg.Register("t", []byte("k"), Limits{OpsPerSec: 1, Burst: 1})
	if ok, _ := tn.Admit(0, clk.now()); !ok {
		t.Fatal("first op refused")
	}
	if ok, _ := tn.Admit(0, clk.now()); ok {
		t.Fatal("second op admitted against rate 1, burst 1")
	}
	tn2 := reg.Register("t", []byte("k"), Limits{OpsPerSec: 1, Burst: 1})
	if ok, _ := tn2.Admit(0, clk.now()); !ok {
		t.Fatal("re-registered tenant did not get a fresh bucket")
	}
}
