// Package tenant implements the multi-tenant control plane of the SRB
// server: shared-key tenant identities with HMAC connect proofs, per-tenant
// token-bucket rate limits (ops/s and bytes/s) and storage quotas, and the
// per-tenant admission counters the observability endpoint exports.
//
// The package is deliberately mechanism-only: it never touches the wire or
// the catalog. The srb server asks a Registry to authenticate a handshake
// proof and to admit each request against the tenant's buckets; MCAT asks
// nothing of it (quota accounting lives with the metadata it derives from).
// Buckets run on an injectable clock so admission sequences are exactly
// reproducible in tests — the same property netsim's virtual transmission
// clock gives the network simulation.
package tenant

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Registry errors.
var (
	// ErrUnknownTenant is returned for a handshake naming a tenant the
	// registry has no key for.
	ErrUnknownTenant = errors.New("tenant: unknown tenant")
	// ErrBadProof is returned when the handshake proof does not verify
	// against the tenant's key.
	ErrBadProof = errors.New("tenant: key proof mismatch")
)

// proofContext domain-separates the connect proof from any other use of
// the tenant key.
const proofContext = "srb-connect-v1"

// ProofSize is the length of a connect proof (HMAC-SHA256).
const ProofSize = sha256.Size

// Proof computes the connect-handshake key proof: HMAC-SHA256 over the
// tenant ID and user name under the tenant's shared key. Both sides compute
// it — the client to present, the server to verify — so the key itself
// never crosses the wire.
func Proof(key []byte, tenantID, user string) []byte {
	mac := hmac.New(sha256.New, key)
	// NUL separators make the message injective: ("ab","c") and ("a","bc")
	// must not collide.
	msg := make([]byte, 0, len(proofContext)+len(tenantID)+len(user)+2)
	msg = append(msg, proofContext...)
	msg = append(msg, 0)
	msg = append(msg, tenantID...)
	msg = append(msg, 0)
	msg = append(msg, user...)
	//lint:allow errdrop -- hash.Hash.Write is documented to never return an error
	mac.Write(msg)
	return mac.Sum(nil)
}

// Limits bounds one tenant's resource consumption. Zero-valued fields are
// unlimited, so the zero Limits admits everything — a registered tenant
// with no limits is authentication-only.
type Limits struct {
	// OpsPerSec refills the operation bucket (each request costs one op).
	OpsPerSec float64
	// BytesPerSec refills the byte bucket (writes cost their payload,
	// reads their requested length).
	BytesPerSec float64
	// Burst scales both bucket depths: a tenant may consume Burst seconds
	// of its rate in one spike. Zero or negative defaults to one second.
	Burst float64
	// QuotaBytes caps the tenant's total stored bytes in the catalog.
	QuotaBytes int64
}

func (l Limits) burst() float64 {
	if l.Burst <= 0 {
		return 1
	}
	return l.Burst
}

// Stats is a snapshot of one tenant's admission counters.
type Stats struct {
	Admitted int64 // requests admitted through the buckets
	ShedOps  int64 // requests refused by the op or byte bucket
}

// Tenant is one registered identity: its shared key, limits and buckets.
type Tenant struct {
	ID     string
	key    []byte
	limits Limits

	ops   *Bucket // nil = unlimited
	bytes *Bucket // nil = unlimited

	admitted atomicCounter
	shed     atomicCounter
}

// Limits reports the tenant's configured limits.
func (t *Tenant) Limits() Limits { return t.limits }

// Stats snapshots the tenant's admission counters.
func (t *Tenant) Stats() Stats {
	return Stats{Admitted: t.admitted.load(), ShedOps: t.shed.load()}
}

// Admit charges one request of cost bytes against the tenant's buckets.
// Both buckets are charged or neither: a request refused by the byte bucket
// does not burn an op token, so a shed request leaves the tenant's state as
// if it had never arrived (the same never-started property the global
// MaxInflight shed has). On refusal it returns false and the wait until the
// refused request would fit — the retry-after hint carried to the client.
func (t *Tenant) Admit(cost int64, now time.Time) (bool, time.Duration) {
	if t.ops == nil && t.bytes == nil {
		t.admitted.add(1)
		return true, 0
	}
	ok1, wait1 := true, time.Duration(0)
	if t.ops != nil {
		ok1, wait1 = t.ops.Ask(1, now)
	}
	ok2, wait2 := true, time.Duration(0)
	if t.bytes != nil && cost > 0 {
		ok2, wait2 = t.bytes.Ask(float64(cost), now)
	}
	if !ok1 || !ok2 {
		t.shed.add(1)
		if wait2 > wait1 {
			wait1 = wait2
		}
		return false, wait1
	}
	if t.ops != nil {
		t.ops.Take(1, now)
	}
	if t.bytes != nil && cost > 0 {
		t.bytes.Take(float64(cost), now)
	}
	t.admitted.add(1)
	return true, 0
}

// Registry holds the tenant set. When attached to an srb server it makes
// authentication mandatory: every connect must present a valid tenant
// proof. The registry is shared across server generations (like a config
// file on disk), so bucket state and counters survive a crash/restart of
// the serving process — the abusive tenant does not get a fresh bucket by
// crashing the server.
type Registry struct {
	now func() time.Time // injected clock; immutable after NewRegistry

	mu      sync.RWMutex
	tenants map[string]*Tenant // guarded by mu
}

// NewRegistry returns an empty registry on the wall clock.
func NewRegistry() *Registry { return NewRegistryClock(time.Now) }

// NewRegistryClock returns an empty registry whose buckets read time from
// now — a virtual clock makes admit/shed sequences exactly reproducible.
func NewRegistryClock(now func() time.Time) *Registry {
	return &Registry{now: now, tenants: make(map[string]*Tenant)}
}

// Register adds or replaces a tenant. The key is copied; fresh buckets are
// built from the limits, so re-registering resets bucket state.
func (r *Registry) Register(id string, key []byte, limits Limits) *Tenant {
	t := &Tenant{
		ID:     id,
		key:    append([]byte(nil), key...),
		limits: limits,
	}
	if limits.OpsPerSec > 0 {
		t.ops = NewBucket(limits.OpsPerSec, limits.OpsPerSec*limits.burst(), r.now)
	}
	if limits.BytesPerSec > 0 {
		t.bytes = NewBucket(limits.BytesPerSec, limits.BytesPerSec*limits.burst(), r.now)
	}
	r.mu.Lock()
	r.tenants[id] = t
	r.mu.Unlock()
	return t
}

// Lookup returns a registered tenant.
func (r *Registry) Lookup(id string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[id]
	return t, ok
}

// Authenticate verifies a connect proof. Unknown tenants and bad proofs
// return distinct errors for the server's log, but the wire response is the
// same terminal auth failure either way — the handshake must not oracle
// which tenant IDs exist.
func (r *Registry) Authenticate(id, user string, proof []byte) (*Tenant, error) {
	t, ok := r.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	want := Proof(t.key, id, user)
	if !hmac.Equal(want, proof) {
		return nil, fmt.Errorf("%w: tenant %q", ErrBadProof, id)
	}
	return t, nil
}

// Now reads the registry's clock (the server stamps retry-after hints with
// the same clock the buckets run on).
func (r *Registry) Now() time.Time { return r.now() }

// Names lists the registered tenant IDs, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tenants))
	for id := range r.tenants {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// StatsAll snapshots every tenant's admission counters, keyed by ID.
func (r *Registry) StatsAll() map[string]Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]Stats, len(r.tenants))
	for id, t := range r.tenants {
		out[id] = t.Stats()
	}
	return out
}
