package chaos

import (
	"reflect"
	"testing"
	"time"

	"semplar/internal/cluster"
	"semplar/internal/netsim"
	"semplar/internal/storage"
)

// shortConfig is the seeded smoke configuration wired into `make
// chaos-short`: small enough to finish in seconds (including -race), large
// enough that every fault class fires while data is in flight. The device
// is metered so the ~1 MiB workload spans the fault horizon instead of
// finishing before the first event.
func shortConfig(seed int64) Config {
	return Config{
		Seed: seed,
		Spec: cluster.Spec{
			Name:    "chaos-short",
			Profile: netsim.Loopback(),
			Device: storage.DeviceSpec{
				Name:      "chaos-dev",
				ReadRate:  8 * netsim.MBps,
				WriteRate: 1 * netsim.MBps,
				OpLatency: time.Millisecond,
			},
		},
		Nodes:    2,
		Files:    2,
		FileSize: 256 << 10,
		Streams:  2,
		Chunk:    32 << 10,
		Fault: netsim.ChaosConfig{
			Horizon:        1200 * time.Millisecond,
			ConnKills:      3,
			Partitions:     1,
			PartitionDur:   150 * time.Millisecond,
			Spikes:         1,
			SpikeMax:       5 * time.Millisecond,
			SpikeDur:       100 * time.Millisecond,
			ServerKills:    1,
			ServerDowntime: 80 * time.Millisecond,
		},
	}
}

func TestChaosShort(t *testing.T) {
	const seed = 2006
	res, err := Run(shortConfig(seed))
	if err != nil {
		t.Fatalf("chaos run (seed %d): %v", seed, err)
	}
	if len(res.Files) != 4 {
		t.Fatalf("verified %d files, want 4", len(res.Files))
	}
	for _, f := range res.Files {
		if !f.Verified {
			t.Errorf("%s not verified: client %s server %s", f.Path, f.Sum, f.ServerSum)
		}
	}
	if len(res.Schedule) == 0 {
		t.Fatal("empty fault schedule")
	}
	// The faults must actually have bitten: with connection kills and a
	// server crash landing inside a second of metered writes, at least
	// one stream had to redial and replay.
	if res.Reconnects < 1 {
		t.Errorf("no reconnects recorded — schedule never overlapped the workload (schedule done: %v)", res.ScheduleDone)
	}

	// Reproducibility: the same seed yields the same schedule and the
	// same verified checksums.
	res2, err := Run(shortConfig(seed))
	if err != nil {
		t.Fatalf("chaos rerun (seed %d): %v", seed, err)
	}
	if !reflect.DeepEqual(res.Schedule, res2.Schedule) {
		t.Fatal("same seed produced different fault schedules")
	}
	for i := range res.Files {
		if res.Files[i].Sum != res2.Files[i].Sum {
			t.Errorf("%s: checksum differs across identical seeds: %s vs %s",
				res.Files[i].Path, res.Files[i].Sum, res2.Files[i].Sum)
		}
	}
}

// fedShortConfig is the federated smoke wired into `make chaos-short`:
// three metered shards with two-way replication, one shard killed and
// restarted while the striped writes are in flight, plus a shard-scoped
// partition window. Connection kills stay in the mix so the
// single-server fault classes keep firing alongside the shard faults.
func fedShortConfig(seed int64) Config {
	cfg := shortConfig(seed)
	cfg.Shards = 3
	cfg.Replicas = 2
	cfg.Files = 1 // per node; each file striped across all three shards
	cfg.Fault.ServerKills = 0
	cfg.Fault.ServerDowntime = 0
	cfg.Fault.ShardKills = 1
	cfg.Fault.ShardDowntime = 120 * time.Millisecond
	cfg.Fault.ShardPartitions = 1
	cfg.Fault.ShardPartitionDur = 100 * time.Millisecond
	return cfg
}

func TestChaosFederationShort(t *testing.T) {
	const seed = 2006
	res, err := Run(fedShortConfig(seed))
	if err != nil {
		t.Fatalf("federated chaos run (seed %d): %v", seed, err)
	}
	if len(res.Files) != 2 {
		t.Fatalf("verified %d files, want 2", len(res.Files))
	}
	for _, f := range res.Files {
		// Verified means the triple check held: expected content hash,
		// the client's post-restart federated re-read, and the per-slot
		// Schksum of every replica on every shard.
		if !f.Verified {
			t.Errorf("%s not verified: client %s server %s", f.Path, f.Sum, f.ServerSum)
		}
	}
	killed, parted := false, false
	for _, ev := range res.Schedule {
		switch ev.Kind {
		case netsim.FaultShardKill:
			killed = true
		case netsim.FaultShardPartition:
			parted = true
		}
	}
	if !killed {
		t.Fatal("schedule carries no shard kill")
	}
	if !parted {
		t.Fatal("schedule carries no shard partition")
	}
	if res.Reconnects < 1 {
		t.Errorf("no reconnects recorded — faults never overlapped the workload (schedule done: %v)", res.ScheduleDone)
	}

	// Determinism: the same seed yields the same shard-fault schedule and
	// the same verified checksums.
	res2, err := Run(fedShortConfig(seed))
	if err != nil {
		t.Fatalf("federated chaos rerun (seed %d): %v", seed, err)
	}
	if !reflect.DeepEqual(res.Schedule, res2.Schedule) {
		t.Fatal("same seed produced different fault schedules")
	}
	for i := range res.Files {
		if res.Files[i].Sum != res2.Files[i].Sum || res.Files[i].ServerSum != res2.Files[i].ServerSum {
			t.Errorf("%s: checksums differ across identical seeds", res.Files[i].Path)
		}
	}
}

func TestChaosSurvivesWorkloadOutpacingSchedule(t *testing.T) {
	// A tiny workload finishes before most of the schedule fires; Run
	// must cancel the remaining events, normalize the testbed and still
	// verify cleanly.
	cfg := shortConfig(7)
	cfg.Nodes = 1
	cfg.Files = 1
	cfg.FileSize = 32 << 10
	cfg.Fault.Horizon = 30 * time.Second
	cfg.Fault.ConnKills = 1
	cfg.Fault.Partitions = 0
	cfg.Fault.Spikes = 0
	cfg.Fault.ServerKills = 1
	cfg.Fault.ServerDowntime = 25 * time.Second // restart would be far away
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("short workload run: %v", err)
	}
	if res.ScheduleDone {
		t.Fatal("schedule claims completion despite 30s horizon")
	}
	for _, f := range res.Files {
		if !f.Verified {
			t.Errorf("%s not verified", f.Path)
		}
	}
}
