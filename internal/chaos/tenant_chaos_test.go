package chaos

import (
	"testing"
)

// TestChaosTenantShort is the abusive-tenant smoke wired into `make
// chaos-short`: one tenant flooding the server with unpaced, unretried
// ops against a tight rate limit while three well-behaved tenants do real
// striped I/O on the same server. RunTenant itself asserts the fairness
// contract — every well-behaved op completes, nothing is misclassified
// terminal, the abuser's excess is shed with a retryable rate-limit
// status carrying a retry-after hint, and per-tenant stats pin every shed
// on the abuser alone.
func TestChaosTenantShort(t *testing.T) {
	const seed = 2006
	res, err := RunTenant(TenantConfig{Seed: seed})
	if err != nil {
		t.Fatalf("abusive-tenant run (seed %d): %v", seed, err)
	}
	if len(res.Files) != 3 {
		t.Fatalf("verified %d well-behaved files, want 3", len(res.Files))
	}
	for _, f := range res.Files {
		if !f.Verified {
			t.Errorf("%s not verified", f.Path)
		}
	}
	// The flood must have been mostly refused: at 10x-plus the abuser's
	// sustainable rate, sheds dominate admissions.
	if res.AbuserSheds <= res.AbuserAdmits {
		t.Errorf("flood barely throttled: %d sheds vs %d admits", res.AbuserSheds, res.AbuserAdmits)
	}
	// Housekeeping ops outside the flood loop (the scratch-file close) may
	// also be shed, so the per-tenant counter can run slightly ahead of the
	// client's tally — never behind it.
	if got := res.Tenants[abuserID].ShedOps; got < res.AbuserSheds {
		t.Errorf("per-tenant sheds = %d, client observed %d", got, res.AbuserSheds)
	}
	if res.Server.RateLimited == 0 {
		t.Error("server RateLimited counter never moved")
	}
	if res.Server.AuthFailed != 0 {
		t.Errorf("AuthFailed = %d on a run with only valid credentials", res.Server.AuthFailed)
	}
}
