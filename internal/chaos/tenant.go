package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"semplar/internal/cluster"
	"semplar/internal/core"
	"semplar/internal/netsim"
	"semplar/internal/srb"
	"semplar/internal/tenant"
)

// TenantConfig sizes one abusive-tenant chaos run: one flooding tenant
// hammering a tight rate limit next to N well-behaved tenants doing real
// work under generous limits. The fault this scenario injects is the
// abuser itself; the invariant verified is fair-share isolation — every
// well-behaved op completes, none is misclassified terminal, and the
// abuser's excess is shed with statusRateLimited, visible in per-tenant
// stats.
type TenantConfig struct {
	// Seed drives the file contents and the abuser's op shapes; the same
	// seed reproduces the same run.
	Seed int64

	WellBehaved int // well-behaved tenants (default 3)
	Files       int // files per well-behaved tenant (default 1)
	FileSize    int // bytes per file (default 64 KiB)
	Chunk       int // write/read granularity (default 8 KiB)

	// FloodOps is how many back-to-back ops the abuser fires with no
	// pacing and no retries (default 200). Against AbuserOpsPerSec it
	// floods at far beyond 10x its sustainable rate.
	FloodOps        int
	AbuserOpsPerSec float64 // abuser's ops bucket (default 20, burst 5)

	// Retry is the well-behaved tenants' policy; the zero value gets the
	// chaos default. The abuser always runs without retries so every shed
	// is observable.
	Retry srb.RetryPolicy
}

func (c TenantConfig) withDefaults() TenantConfig {
	if c.WellBehaved <= 0 {
		c.WellBehaved = 3
	}
	if c.Files <= 0 {
		c.Files = 1
	}
	if c.FileSize <= 0 {
		c.FileSize = 64 << 10
	}
	if c.Chunk <= 0 {
		c.Chunk = 8 << 10
	}
	if c.FloodOps <= 0 {
		c.FloodOps = 200
	}
	if c.AbuserOpsPerSec <= 0 {
		c.AbuserOpsPerSec = 20
	}
	if !c.Retry.Enabled() {
		c.Retry = srb.RetryPolicy{
			MaxAttempts: 10,
			BaseBackoff: 10 * time.Millisecond,
			MaxBackoff:  200 * time.Millisecond,
			Multiplier:  1.5,
			Jitter:      0.2,
			OpTimeout:   5 * time.Second,
		}
	}
	return c
}

// TenantResult reports one abusive-tenant run.
type TenantResult struct {
	Files        []FileReport            // well-behaved files, all verified
	AbuserSheds  int64                   // floods refused with ErrRateLimited, client view
	AbuserAdmits int64                   // floods that got through
	Server       srb.ServerStats         // post-run fleet counters
	Tenants      map[string]tenant.Stats // per-tenant admission counters
}

const abuserID = "abuser"

func politeID(i int) string { return fmt.Sprintf("polite%d", i) }

func tenantChaosKey(id string) []byte { return []byte("chaos-key-" + id) }

// RunTenant executes one seeded abusive-tenant run and verifies the
// fairness invariant. All tenants share one server; only their buckets
// separate them.
func RunTenant(cfg TenantConfig) (*TenantResult, error) {
	cfg = cfg.withDefaults()
	baselineGoroutines := runtime.NumGoroutine()

	tb := cluster.NewFederated(cluster.Spec{
		Name:    "chaos-tenant",
		Profile: netsim.Loopback(),
	}, cfg.WellBehaved+1, 1, 1)

	// Per-tenant limits: the abuser gets a tight ops bucket, the
	// well-behaved tenants get room for their whole workload plus slack.
	// The registry outlives the run — and would outlive server restarts.
	reg := tenant.NewRegistry()
	reg.Register(abuserID, tenantChaosKey(abuserID), tenant.Limits{
		OpsPerSec: cfg.AbuserOpsPerSec,
		Burst:     0.25,
	})
	for i := 0; i < cfg.WellBehaved; i++ {
		id := politeID(i)
		reg.Register(id, tenantChaosKey(id), tenant.Limits{
			OpsPerSec: 5000,
			Burst:     1,
		})
	}
	tb.SetTenants(reg)
	if err := tb.ActiveServer().MkdirAll("/tenants"); err != nil {
		return nil, err
	}

	res := &TenantResult{}

	// The abuser floods on node 0; each well-behaved tenant works on its
	// own node. Everything runs concurrently so the flood and the real
	// work contend on the same server.
	type politeOutcome struct {
		id    string
		files []FileReport
		err   error
	}
	outcomes := make(chan politeOutcome, cfg.WellBehaved)
	var wg sync.WaitGroup
	wg.Add(1)
	var abuseErr error
	go func() {
		defer wg.Done()
		res.AbuserSheds, res.AbuserAdmits, abuseErr = runAbuser(tb, cfg)
	}()
	for i := 0; i < cfg.WellBehaved; i++ {
		go func(i int) {
			files, err := runPolite(tb, cfg, i)
			outcomes <- politeOutcome{id: politeID(i), files: files, err: err}
		}(i)
	}
	var workErr error
	for i := 0; i < cfg.WellBehaved; i++ {
		o := <-outcomes
		if o.err != nil && workErr == nil {
			workErr = fmt.Errorf("%s: %w", o.id, o.err)
		}
		res.Files = append(res.Files, o.files...)
	}
	wg.Wait()

	res.Tenants = reg.StatsAll()
	if abuseErr != nil {
		return res, fmt.Errorf("chaos: abuser workload: %w", abuseErr)
	}
	if workErr != nil {
		return res, fmt.Errorf("chaos: well-behaved workload failed beside the flood: %w", workErr)
	}

	// The fairness invariant, server-side view: the abuser's excess was
	// shed and accounted to the abuser alone.
	if res.AbuserSheds == 0 {
		return res, fmt.Errorf("chaos: abuser flooded %d ops and was never shed", cfg.FloodOps)
	}
	ab := res.Tenants[abuserID]
	if ab.ShedOps == 0 {
		return res, fmt.Errorf("chaos: abuser sheds invisible in per-tenant stats: %+v", ab)
	}
	for i := 0; i < cfg.WellBehaved; i++ {
		if ts := res.Tenants[politeID(i)]; ts.ShedOps != 0 {
			return res, fmt.Errorf("chaos: well-behaved %s charged %d sheds for the abuser's flood", politeID(i), ts.ShedOps)
		}
	}
	if err := checkLeaks(tb, &Result{}, baselineGoroutines); err != nil {
		return res, err
	}
	res.Server = tb.ActiveServer().Stats()
	if res.Server.RateLimited < res.AbuserSheds {
		return res, fmt.Errorf("chaos: server counted %d rate-limited ops, client observed %d",
			res.Server.RateLimited, res.AbuserSheds)
	}
	return res, nil
}

// runAbuser floods the server with unpaced single-attempt ops. Every
// refusal must be the retryable rate-limit shed — anything terminal (or
// any transport failure) fails the run: overload protection must never
// escalate to breaking the abuser's connection.
func runAbuser(tb *cluster.Testbed, cfg TenantConfig) (sheds, admits int64, err error) {
	conn, err := srb.DialRetryAuth(tb.Dialer(0), "chaos-abuser",
		srb.Credentials{TenantID: abuserID, Key: tenantChaosKey(abuserID)}, srb.RetryPolicy{})
	if err != nil {
		return 0, 0, fmt.Errorf("abuser dial: %w", err)
	}
	defer conn.Close()

	// The opening burst covers the open; from there the flood outruns the
	// bucket immediately.
	f, err := conn.Open("/tenants/abuser-scratch", srb.O_RDWR|srb.O_CREATE, "")
	if err != nil {
		return 0, 0, fmt.Errorf("abuser open: %w", err)
	}
	defer f.Close()

	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5EED))
	payload := make([]byte, 512)
	for i := 0; i < cfg.FloodOps; i++ {
		rng.Read(payload)
		_, werr := f.WriteAt(payload, int64(rng.Intn(1<<16)))
		switch {
		case werr == nil:
			admits++
		case errors.Is(werr, srb.ErrRateLimited):
			if !srb.Retryable(werr) {
				return sheds, admits, fmt.Errorf("flood op %d: shed %v not retryable", i, werr)
			}
			var rl *srb.RateLimitedError
			if !errors.As(werr, &rl) || rl.RetryAfter <= 0 {
				return sheds, admits, fmt.Errorf("flood op %d: shed without retry-after hint: %v", i, werr)
			}
			sheds++
		default:
			return sheds, admits, fmt.Errorf("flood op %d: %v", i, werr)
		}
	}
	return sheds, admits, nil
}

// runPolite runs one well-behaved tenant's workload through the full
// client stack (striped streams, retry with the rate-limit backoff floor)
// and verifies every byte read back.
func runPolite(tb *cluster.Testbed, cfg TenantConfig, i int) ([]FileReport, error) {
	id := politeID(i)
	fs, err := core.NewSRBFS(core.SRBFSConfig{
		Dial:   tb.Dialer(i + 1),
		User:   "chaos-" + id,
		Tenant: srb.Credentials{TenantID: id, Key: tenantChaosKey(id)},
		Retry:  cfg.Retry,
	})
	if err != nil {
		return nil, err
	}
	var out []FileReport
	for fi := 0; fi < cfg.Files; fi++ {
		p := fmt.Sprintf("/tenants/%s-f%d", id, fi)
		content := fileContent(cfg.Seed, i+1, fi, cfg.FileSize)
		if _, _, err := writeAndReadBack(fs, p, content, cfg.Chunk); err != nil {
			return out, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, FileReport{Path: p, Verified: true})
	}
	return out, nil
}
