// Package chaos is the deterministic fault-injection harness: it runs a
// full remote-I/O workload on a simulated cluster testbed while a seeded
// fault schedule (connection kills, partitions, latency spikes, server
// crash/restart cycles) plays out against it, then verifies end-to-end
// integrity — every file's bytes read back checksum-identical, the
// server-side checksum agrees, and nothing leaked (handles, connections,
// goroutines). A failure reproduces from its seed alone.
package chaos

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"semplar/internal/adio"
	"semplar/internal/cluster"
	"semplar/internal/core"
	"semplar/internal/netsim"
	"semplar/internal/srb"
)

// Config sizes one chaos run. The zero value is filled with small but
// meaningful defaults; only Seed is always meaningful as given.
type Config struct {
	// Seed drives both the fault schedule and the file contents; the
	// same seed reproduces the same run shape exactly.
	Seed int64

	// Spec is the testbed profile. The zero Spec runs unshaped loopback
	// networking with an unmetered store — fast functional chaos.
	Spec cluster.Spec

	Nodes    int // client nodes (default 2)
	Files    int // files written per node (default 2)
	FileSize int // bytes per file (default 256 KiB)
	Streams  int // TCP streams per open handle (default 2)
	Chunk    int // write/read granularity (default 64 KiB)

	// Shards is the server fleet size. At 1 (the default) the run is the
	// classic single-server workload; above 1 the workload goes through
	// the federated client (MCAT-placed striping with replica failover)
	// and verification adds per-slot, per-replica server checksums.
	Shards int
	// Replicas is the placement replica-set size (default min(2, Shards)).
	Replicas int
	// AsyncReplicas switches federated writes to asynchronous
	// replication: primary-acked, replicas caught up by Sync/Close.
	AsyncReplicas bool

	// Fault sizes the generated schedule; its Nodes and Horizon are
	// defaulted from the workload if zero.
	Fault netsim.ChaosConfig

	// Retry is the client fault-tolerance policy; the zero value gets a
	// generous default suited to riding out the schedule's windows.
	Retry srb.RetryPolicy
	// ReconnectBudget per open handle (default 128).
	ReconnectBudget int
}

func (c Config) withDefaults() Config {
	if c.Spec.Name == "" {
		c.Spec = cluster.Spec{Name: "chaos-loopback", Profile: netsim.Loopback()}
	}
	if c.Nodes <= 0 {
		c.Nodes = 2
	}
	if c.Files <= 0 {
		c.Files = 2
	}
	if c.FileSize <= 0 {
		c.FileSize = 256 << 10
	}
	if c.Streams <= 0 {
		c.Streams = 2
	}
	if c.Chunk <= 0 {
		c.Chunk = 64 << 10
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Replicas > c.Shards {
		c.Replicas = c.Shards
	}
	if c.Fault.Nodes == 0 {
		c.Fault.Nodes = c.Nodes
	}
	if c.Fault.Shards == 0 {
		c.Fault.Shards = c.Shards
	}
	if c.Fault.Horizon == 0 {
		c.Fault.Horizon = 1500 * time.Millisecond
	}
	if !c.Retry.Enabled() {
		c.Retry = srb.RetryPolicy{
			MaxAttempts: 10,
			BaseBackoff: 10 * time.Millisecond,
			MaxBackoff:  200 * time.Millisecond,
			Multiplier:  1.5,
			Jitter:      0.2,
			OpTimeout:   5 * time.Second,
		}
	}
	if c.ReconnectBudget == 0 {
		c.ReconnectBudget = 128
	}
	return c
}

// FileReport is the verification record for one workload file.
type FileReport struct {
	Path      string
	Sum       string // hex SHA-256 of the bytes read back by the client
	ServerSum string // hex SHA-256 computed server-side (Schksum facility)
	Verified  bool   // both sums match the expected content
}

// Result is the outcome of one chaos run.
type Result struct {
	Schedule     netsim.Schedule // the fault timeline that was played
	ScheduleDone bool            // every event fired before the workload finished
	Files        []FileReport
	Server       srb.ServerStats
	Reconnects   int64 // total stream redials across all handles
	RetriedOps   int64 // total replayed operations across all handles
}

// filePath names one workload file.
func filePath(node, i int) string {
	return fmt.Sprintf("/chaos/node%d/f%d", node, i)
}

// fileContent deterministically generates one file's payload from the run
// seed: same seed, same bytes, on every run and in every phase.
func fileContent(seed int64, node, i, size int) []byte {
	rng := rand.New(rand.NewSource(seed ^ int64(node)<<32 ^ int64(i)<<16))
	buf := make([]byte, size)
	rng.Read(buf)
	return buf
}

// Run executes one seeded chaos run and verifies it. It returns an error
// for infrastructure failures and verification failures alike; on success
// every file in the Result is Verified.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	baselineGoroutines := runtime.NumGoroutine()

	tb := cluster.NewFederated(cfg.Spec, cfg.Nodes, cfg.Shards, cfg.Replicas)
	// Slot files of a path land on whichever shards placement picks, so
	// every shard needs the collection tree.
	for s := 0; s < tb.Shards(); s++ {
		if err := tb.ActiveShard(s).MkdirAll("/chaos"); err != nil {
			return nil, err
		}
		for n := 0; n < cfg.Nodes; n++ {
			if err := tb.ActiveShard(s).MkdirAll(fmt.Sprintf("/chaos/node%d", n)); err != nil {
				return nil, err
			}
		}
	}

	res := &Result{Schedule: netsim.GenSchedule(cfg.Seed, cfg.Fault)}

	// The fault timeline plays against the testbed while the workload
	// runs. If the workload outlives the schedule, every event fires; if
	// it finishes first, the stop channel cancels the rest and the
	// testbed is normalized below before verification.
	stop := make(chan struct{})
	schedDone := make(chan bool, 1)
	go func() { schedDone <- res.Schedule.Run(stop, tb) }()

	type nodeOutcome struct {
		err                    error
		reconnects, retriedOps int64
	}
	outcomes := make(chan nodeOutcome, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		go func(node int) {
			rec, ret, err := runNodeWorkload(tb, cfg, node)
			outcomes <- nodeOutcome{err: err, reconnects: rec, retriedOps: ret}
		}(n)
	}
	var workErr error
	for i := 0; i < cfg.Nodes; i++ {
		o := <-outcomes
		if o.err != nil && workErr == nil {
			workErr = o.err
		}
		res.Reconnects += o.reconnects
		res.RetriedOps += o.retriedOps
	}
	close(stop)
	res.ScheduleDone = <-schedDone

	// Normalize the testbed for the verification phase: faults are over,
	// every shard must be up and the network clean. Restarting the fleet
	// also makes the verify re-read a post-restart read: the metadata it
	// sees came back through each shard's journal replay.
	for s := 0; s < tb.Shards(); s++ {
		tb.RestartShard(s)
	}
	tb.LatencySpike(0)
	if workErr != nil {
		return res, fmt.Errorf("chaos: workload failed: %w", workErr)
	}

	if err := verify(tb, cfg, res); err != nil {
		return res, err
	}
	if err := checkLeaks(tb, res, baselineGoroutines); err != nil {
		return res, err
	}
	return res, nil
}

// nodeDriver builds one node's client: the single-server SRBFS for a
// one-shard testbed, the federated FedFS (MCAT-placed striping with
// replica failover) for a fleet. Both ride the same retry classification
// and reconnect budgets — a dead shard is just another transient.
func nodeDriver(tb *cluster.Testbed, cfg Config, node int, user string) (adio.Driver, error) {
	if cfg.Shards <= 1 {
		return core.NewSRBFS(core.SRBFSConfig{
			Dial:            tb.Dialer(node),
			User:            user,
			Streams:         cfg.Streams,
			StripeSize:      cfg.Chunk,
			Retry:           cfg.Retry,
			ReconnectBudget: cfg.ReconnectBudget,
		})
	}
	return core.NewFedFS(core.FedConfig{
		Endpoints:       tb.FedEndpoints(node),
		Placer:          tb.Placer(),
		Width:           cfg.Shards,
		Async:           cfg.AsyncReplicas,
		User:            user,
		Streams:         cfg.Streams,
		StripeSize:      cfg.Chunk,
		Retry:           cfg.Retry,
		ReconnectBudget: cfg.ReconnectBudget,
	})
}

// runNodeWorkload writes this node's files through the full SEMPLAR client
// stack (striped streams, retry/reconnect) while faults fire, then reads
// each back through the same handles for a first-pass content check.
func runNodeWorkload(tb *cluster.Testbed, cfg Config, node int) (reconnects, retriedOps int64, err error) {
	fs, err := nodeDriver(tb, cfg, node, fmt.Sprintf("chaos-node%d", node))
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < cfg.Files; i++ {
		p := filePath(node, i)
		content := fileContent(cfg.Seed, node, i, cfg.FileSize)
		rec, ret, werr := writeAndReadBack(fs, p, content, cfg.Chunk)
		reconnects += rec
		retriedOps += ret
		if werr != nil {
			return reconnects, retriedOps, fmt.Errorf("%s: %w", p, werr)
		}
	}
	return reconnects, retriedOps, nil
}

func writeAndReadBack(fs adio.Driver, p string, content []byte, chunk int) (reconnects, retriedOps int64, err error) {
	f, err := fs.Open(p, adio.O_RDWR|adio.O_CREATE, nil)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		if fr, ok := f.(core.FaultReporter); ok {
			st := fr.FaultStats()
			reconnects, retriedOps = st.Reconnects, st.RetriedOps
		}
		cerr := f.Close()
		if err == nil {
			err = cerr
		}
	}()
	// Chunked writes give the schedule many distinct fault windows; each
	// chunk is an idempotent explicit-offset op the client may replay. A
	// small pool of concurrent writers keeps several tagged requests
	// outstanding per connection, so faults land mid-pipeline rather than
	// between strictly serialized ops.
	const chunkWriters = 4
	sem := make(chan struct{}, chunkWriters)
	var (
		wg     sync.WaitGroup
		werrMu sync.Mutex
		werr   error // guarded by werrMu
	)
	for off := 0; off < len(content); off += chunk {
		end := off + chunk
		if end > len(content) {
			end = len(content)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(off, end int) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, e := f.WriteAt(content[off:end], int64(off)); e != nil {
				werrMu.Lock()
				if werr == nil {
					werr = fmt.Errorf("write@%d: %w", off, e)
				}
				werrMu.Unlock()
			}
		}(off, end)
	}
	wg.Wait()
	if werr != nil {
		return 0, 0, werr
	}
	got := make([]byte, len(content))
	if _, rerr := f.ReadAt(got, 0); rerr != nil {
		return 0, 0, fmt.Errorf("readback: %w", rerr)
	}
	if !bytes.Equal(got, content) {
		return 0, 0, fmt.Errorf("readback mismatch under faults")
	}
	return 0, 0, nil
}

// verify re-reads every file through fresh fault-free clients and compares
// three ways: expected content hash, client read-back hash, and the
// server-side Schksum computed without shipping the bytes.
func verify(tb *cluster.Testbed, cfg Config, res *Result) error {
	if cfg.Shards > 1 {
		return verifyFed(tb, cfg, res)
	}
	conn, err := srb.DialRetry(tb.Dialer(0), "chaos-verify", cfg.Retry)
	if err != nil {
		return fmt.Errorf("chaos: verify dial: %w", err)
	}
	defer conn.Close()

	for n := 0; n < cfg.Nodes; n++ {
		fs, err := core.NewSRBFS(core.SRBFSConfig{
			Dial:  tb.Dialer(n),
			User:  "chaos-verify",
			Retry: cfg.Retry,
		})
		if err != nil {
			return err
		}
		for i := 0; i < cfg.Files; i++ {
			p := filePath(n, i)
			content := fileContent(cfg.Seed, n, i, cfg.FileSize)
			wantSum := sha256.Sum256(content)
			want := hex.EncodeToString(wantSum[:])

			rep := FileReport{Path: p}
			f, err := fs.Open(p, adio.O_RDONLY, nil)
			if err != nil {
				return fmt.Errorf("chaos: verify open %s: %w", p, err)
			}
			got := make([]byte, len(content))
			_, rerr := f.ReadAt(got, 0)
			cerr := f.Close()
			if rerr != nil {
				return fmt.Errorf("chaos: verify read %s: %w", p, rerr)
			}
			if cerr != nil {
				return fmt.Errorf("chaos: verify close %s: %w", p, cerr)
			}
			gotSum := sha256.Sum256(got)
			rep.Sum = hex.EncodeToString(gotSum[:])

			srvSum, srvSize, err := conn.Checksum(p)
			if err != nil {
				return fmt.Errorf("chaos: server checksum %s: %w", p, err)
			}
			rep.ServerSum = srvSum

			rep.Verified = rep.Sum == want && rep.ServerSum == want &&
				srvSize == int64(len(content))
			res.Files = append(res.Files, rep)
			if !rep.Verified {
				return fmt.Errorf("chaos: %s corrupted: want %s, client %s, server %s (size %d/%d)",
					p, want, rep.Sum, rep.ServerSum, srvSize, len(content))
			}
		}
	}
	return nil
}

// slotImage extracts the dense byte image one stripe slot holds for
// content striped at the given size and width — what every replica of
// the slot must store bit-identically (see core.SlotPath).
func slotImage(content []byte, stripe, width, slot int) []byte {
	var out []byte
	for b := slot * stripe; b < len(content); b += stripe * width {
		end := b + stripe
		if end > len(content) {
			end = len(content)
		}
		out = append(out, content[b:end]...)
	}
	return out
}

// verifyFed is the federated verification pass. Three checksums per file
// must agree with the expected content: the client's federated re-read
// (post-restart — the fleet was just cycled through its journals), and
// the server-side Schksum of every slot file on every server of its
// replica set, each compared against the slot's expected dense image.
// The per-server sums are folded (in slot, then replica order) into the
// report's ServerSum so the record stays one line per file.
func verifyFed(tb *cluster.Testbed, cfg Config, res *Result) error {
	names := tb.ShardNames()
	conns := make(map[string]*srb.Conn, len(names))
	for i, name := range names {
		conn, err := srb.DialRetry(tb.ShardDialer(0, i), "chaos-verify", cfg.Retry)
		if err != nil {
			return fmt.Errorf("chaos: verify dial %s: %w", name, err)
		}
		defer conn.Close()
		conns[name] = conn
	}

	for n := 0; n < cfg.Nodes; n++ {
		fs, err := nodeDriver(tb, cfg, n, "chaos-verify")
		if err != nil {
			return err
		}
		for i := 0; i < cfg.Files; i++ {
			p := filePath(n, i)
			content := fileContent(cfg.Seed, n, i, cfg.FileSize)
			wantSum := sha256.Sum256(content)
			want := hex.EncodeToString(wantSum[:])

			rep := FileReport{Path: p}
			f, err := fs.Open(p, adio.O_RDONLY, nil)
			if err != nil {
				return fmt.Errorf("chaos: verify open %s: %w", p, err)
			}
			got := make([]byte, len(content))
			_, rerr := f.ReadAt(got, 0)
			cerr := f.Close()
			if rerr != nil {
				return fmt.Errorf("chaos: verify read %s: %w", p, rerr)
			}
			if cerr != nil {
				return fmt.Errorf("chaos: verify close %s: %w", p, cerr)
			}
			gotSum := sha256.Sum256(got)
			rep.Sum = hex.EncodeToString(gotSum[:])

			slots, ok := tb.Placer().Lookup(p)
			if !ok {
				return fmt.Errorf("chaos: %s has no placement after the run", p)
			}
			var srvCat, wantCat []byte // per-server sums, slot then replica order
			for slot, servers := range slots {
				img := slotImage(content, cfg.Chunk, len(slots), slot)
				imgSum := sha256.Sum256(img)
				wantHex := hex.EncodeToString(imgSum[:])
				for _, server := range servers {
					sum, size, err := conns[server].Checksum(core.SlotPath(p, slot))
					if err != nil {
						return fmt.Errorf("chaos: checksum %s slot %d on %s: %w",
							p, slot, server, err)
					}
					if sum != wantHex || size != int64(len(img)) {
						return fmt.Errorf("chaos: %s slot %d diverged on %s: sum %s size %d, want %s size %d",
							p, slot, server, sum, size, wantHex, len(img))
					}
					srvCat = append(srvCat, sum...)
					wantCat = append(wantCat, wantHex...)
				}
			}
			srvFold := sha256.Sum256(srvCat)
			wantFold := sha256.Sum256(wantCat)
			rep.ServerSum = hex.EncodeToString(srvFold[:])
			wantServer := hex.EncodeToString(wantFold[:])

			rep.Verified = rep.Sum == want && rep.ServerSum == wantServer
			res.Files = append(res.Files, rep)
			if !rep.Verified {
				return fmt.Errorf("chaos: %s corrupted: want %s, client %s", p, want, rep.Sum)
			}
		}
	}
	return nil
}

// checkLeaks asserts the run left nothing behind: no open handles or
// live connections on any shard, nothing live on either side of the
// simulated network, and a goroutine count back near the pre-run
// baseline. Stats are summed across the fleet, so one leaking shard
// fails the check no matter how clean the others are.
func checkLeaks(tb *cluster.Testbed, res *Result, baseline int) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		var agg srb.ServerStats
		for s := 0; s < tb.Shards(); s++ {
			st := tb.ActiveShard(s).Stats()
			agg.Connections += st.Connections
			agg.Requests += st.Requests
			agg.BytesRead += st.BytesRead
			agg.BytesWritten += st.BytesWritten
			agg.ActiveConns += st.ActiveConns
			agg.ProtocolError += st.ProtocolError
			agg.OpenHandles += st.OpenHandles
			agg.Shed += st.Shed
			agg.Drained += st.Drained
		}
		nconns := tb.Net.Conns()
		ngo := runtime.NumGoroutine()
		if agg.OpenHandles == 0 && agg.ActiveConns == 0 && nconns == 0 &&
			ngo <= baseline+3 {
			res.Server = agg
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: leak check failed: OpenHandles=%d ActiveConns=%d netConns=%d goroutines=%d (baseline %d)",
				agg.OpenHandles, agg.ActiveConns, nconns, ngo, baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
