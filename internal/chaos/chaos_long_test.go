//go:build chaoslong

package chaos

import (
	"testing"
	"time"

	"semplar/internal/cluster"
	"semplar/internal/netsim"
	"semplar/internal/storage"
)

// TestChaosLong is the full-schedule soak: more nodes, more files, a
// longer horizon with every fault class firing repeatedly, run across
// several seeds. Excluded from `make check` (build tag chaoslong); run it
// with:
//
//	go test -tags chaoslong ./internal/chaos -run TestChaosLong -v
func TestChaosLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos soak")
	}
	for _, seed := range []int64{1, 42, 31337} {
		seed := seed
		cfg := Config{
			Seed: seed,
			Spec: cluster.Spec{
				Name:    "chaos-long",
				Profile: netsim.Loopback(),
				Device: storage.DeviceSpec{
					Name:      "chaos-dev",
					ReadRate:  16 * netsim.MBps,
					WriteRate: 2 * netsim.MBps,
					OpLatency: time.Millisecond,
				},
			},
			Nodes:    4,
			Files:    4,
			FileSize: 512 << 10,
			Streams:  2,
			Chunk:    64 << 10,
			Fault: netsim.ChaosConfig{
				Horizon:        6 * time.Second,
				ConnKills:      12,
				Partitions:     4,
				PartitionDur:   250 * time.Millisecond,
				Spikes:         4,
				SpikeMax:       10 * time.Millisecond,
				SpikeDur:       300 * time.Millisecond,
				ServerKills:    3,
				ServerDowntime: 120 * time.Millisecond,
			},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, f := range res.Files {
			if !f.Verified {
				t.Errorf("seed %d: %s not verified", seed, f.Path)
			}
		}
		if res.Reconnects < 1 {
			t.Errorf("seed %d: schedule never bit the workload", seed)
		}
		t.Logf("seed %d: %d files verified, %d reconnects, %d retried ops, server %+v",
			seed, len(res.Files), res.Reconnects, res.RetriedOps, res.Server)
	}
}
