package mcat

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// mutateOwned drives every size-changing mutation through owned files, so
// replay tests exercise the full usage-accounting surface.
func mutateOwned(t *testing.T, c *Catalog) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.CreateFileAs("/a", "mem", "acme")
	must(err)
	_, err = c.CreateFileAs("/b", "mem", "acme")
	must(err)
	_, err = c.CreateFileAs("/z", "mem", "zeta")
	must(err)
	_, err = c.CreateFile("/anon", "mem") // unowned: never accounted
	must(err)
	must(c.SetSize("/a", 100))
	must(c.GrowSize("/a", 4096))
	must(c.GrowSize("/a", 64)) // no growth: no charge
	must(c.SetSize("/b", 500))
	must(c.SetSize("/b", 200)) // shrink refunds
	must(c.SetSize("/z", 77))
	must(c.SetSize("/anon", 1 << 20))
	must(c.Remove("/b")) // remove refunds the rest
}

func wantUsage(t *testing.T, c *Catalog, owner string, want int64) {
	t.Helper()
	if got := c.Usage(owner); got != want {
		t.Fatalf("Usage(%q) = %d, want %d", owner, got, want)
	}
}

func TestUsageAccounting(t *testing.T) {
	c, _ := journaledCatalog()
	mutateOwned(t, c)
	wantUsage(t, c, "acme", 4096)
	wantUsage(t, c, "zeta", 77)
	wantUsage(t, c, "", 0) // anonymous files are untracked
	all := c.UsageAll()
	if !reflect.DeepEqual(all, map[string]int64{"acme": 4096, "zeta": 77}) {
		t.Fatalf("UsageAll = %v", all)
	}
}

func TestUsageSurvivesReplay(t *testing.T) {
	c, j := journaledCatalog()
	mutateOwned(t, c)

	c2 := replayInto(j)
	wantUsage(t, c2, "acme", 4096)
	wantUsage(t, c2, "zeta", 77)
	if e, err := c2.Lookup("/a"); err != nil || e.Owner != "acme" {
		t.Fatalf("replayed owner = %+v, %v", e, err)
	}
	if e, err := c2.Lookup("/anon"); err != nil || e.Owner != "" {
		t.Fatalf("replayed anonymous owner = %+v, %v", e, err)
	}
}

func TestUsageReplayIdempotent(t *testing.T) {
	c, j := journaledCatalog()
	mutateOwned(t, c)

	// A re-applied prefix (sloppy crash cut) must not double-count usage:
	// a replayed create supersedes the live entry rather than stacking a
	// second copy of its bytes.
	c2 := New()
	c2.RegisterResource(ResourceInfo{Name: "mem", Kind: "memory", Host: "t"})
	c2.Replay(j.Records())
	c2.Replay(j.Records())
	wantUsage(t, c2, "acme", 4096)
	wantUsage(t, c2, "zeta", 77)
}

func TestUsageSurvivesTextJournalTornTail(t *testing.T) {
	c, j := journaledCatalog()
	mutateOwned(t, c)

	var buf bytes.Buffer
	if _, err := j.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Tear the final line (the remove of /b): replay charges /b's 200
	// bytes back to acme, exactly what a crash before the remove implies.
	torn := strings.TrimSuffix(buf.String(), "\n")
	torn = torn[:len(torn)-3]
	recs, err := ReadJournal(strings.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	c2 := New()
	c2.RegisterResource(ResourceInfo{Name: "mem", Kind: "memory", Host: "t"})
	c2.Replay(recs)
	wantUsage(t, c2, "acme", 4096+200)
}

func TestOwnerFieldRoundTrip(t *testing.T) {
	r := Record{Op: JCreate, Path: "/a", Resource: "mem", Key: "obj-1", Seq: 1, Time: 9, Owner: "acme"}
	line := EncodeRecord(nil, r)
	got, err := DecodeRecord(string(line))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip:\nwant %+v\ngot  %+v", r, got)
	}
	// Records written before the tenant layer decode with no owner.
	legacy := `v1 create t=9 path="/a" res="mem" key="obj-1" seq=1`
	got, err = DecodeRecord(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got.Owner != "" {
		t.Fatalf("legacy record grew an owner: %+v", got)
	}
}

func TestSetQuotaAndCheckGrow(t *testing.T) {
	c := New()
	c.RegisterResource(ResourceInfo{Name: "mem", Kind: "memory", Host: "t"})
	if _, err := c.CreateFileAs("/q", "mem", "acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFile("/free", "mem"); err != nil {
		t.Fatal(err)
	}

	// No quota configured: growth is unlimited.
	if err := c.CheckGrow("/q", 1<<40); err != nil {
		t.Fatalf("unquota'd CheckGrow: %v", err)
	}

	c.SetQuota("acme", 1000)
	if err := c.CheckGrow("/q", 1000); err != nil {
		t.Fatalf("CheckGrow at exactly the quota: %v", err)
	}
	if err := c.CheckGrow("/q", 1001); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("CheckGrow over quota = %v, want ErrQuotaExceeded", err)
	}
	// Usage elsewhere counts against the same tenant.
	if err := c.SetSize("/q", 400); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFileAs("/q2", "mem", "acme"); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckGrow("/q2", 601); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("CheckGrow ignoring sibling usage = %v", err)
	}
	if err := c.CheckGrow("/q2", 600); err != nil {
		t.Fatalf("CheckGrow within remaining quota: %v", err)
	}
	// Shrinking (or standing still) is always allowed, even over quota.
	c.SetQuota("acme", 100)
	if err := c.CheckGrow("/q", 400); err != nil {
		t.Fatalf("CheckGrow to current size: %v", err)
	}
	if err := c.CheckGrow("/q", 10); err != nil {
		t.Fatalf("CheckGrow shrinking: %v", err)
	}
	// Unowned files never hit quota machinery.
	if err := c.CheckGrow("/free", 1<<40); err != nil {
		t.Fatalf("unowned CheckGrow: %v", err)
	}
	// Clearing the quota lifts the limit.
	c.SetQuota("acme", 0)
	if err := c.CheckGrow("/q", 1<<40); err != nil {
		t.Fatalf("CheckGrow after quota cleared: %v", err)
	}
}
