package mcat

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// journaledCatalog is a catalog with a resource and an attached journal.
func journaledCatalog() (*Catalog, *MemJournal) {
	c := New()
	c.RegisterResource(ResourceInfo{Name: "mem", Kind: "memory", Host: "t"})
	j := NewMemJournal()
	c.SetJournal(j)
	return c, j
}

// replayInto rebuilds a fresh catalog from the journal, the way a
// restarted server does: register resources, replay, attach.
func replayInto(j *MemJournal) *Catalog {
	c := New()
	c.RegisterResource(ResourceInfo{Name: "mem", Kind: "memory", Host: "t"})
	c.Replay(j.Records())
	c.SetJournal(j)
	return c
}

// mutateEverything drives one of each journaled mutation through c.
func mutateEverything(t *testing.T, c *Catalog) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.Mkdir("/data"))
	must(c.Mkdir("/data/run1"))
	_, err := c.CreateFile("/data/run1/a", "mem")
	must(err)
	_, err = c.CreateFile("/data/run1/b", "mem")
	must(err)
	_, err = c.CreateFile("/data/doomed", "mem")
	must(err)
	must(c.SetSize("/data/run1/a", 100))
	must(c.GrowSize("/data/run1/a", 4096))
	must(c.GrowSize("/data/run1/a", 64)) // no growth: not journaled
	must(c.SetAttr("/data/run1/a", "checksum", "abc123"))
	must(c.SetAttr("/data/run1/a", "owner", `"quoted" user`))
	must(c.AddReplica("/data/run1/a", Replica{Resource: "mem", PhysicalKey: "obj-rep"}))
	must(c.Rename("/data/run1/b", "/data/run1/b2"))
	must(c.Remove("/data/doomed"))
	must(c.Mkdir("/data/empty"))
	must(c.Rmdir("/data/empty"))
}

// entriesEqual compares the full logical state of two catalogs: paths,
// types, sizes, keys, attributes and replicas.
func entriesEqual(t *testing.T, want, got *Catalog) {
	t.Helper()
	dump := func(c *Catalog) map[string]Entry {
		out := make(map[string]Entry)
		var walk func(p string)
		walk = func(p string) {
			es, err := c.List(p)
			if err != nil {
				t.Fatalf("List(%s): %v", p, err)
			}
			for _, e := range es {
				out[e.Path] = *e
				if e.Type == TypeCollection {
					walk(e.Path)
				}
			}
		}
		walk("/")
		return out
	}
	w, g := dump(want), dump(got)
	if len(w) != len(g) {
		t.Fatalf("entry count: want %d, got %d\nwant: %v\ngot: %v", len(w), len(g), w, g)
	}
	for p, we := range w {
		ge, ok := g[p]
		if !ok {
			t.Fatalf("replayed catalog missing %s", p)
		}
		we.Created, we.Modified = ge.Created, ge.Modified
		we.Path = ge.Path
		if !reflect.DeepEqual(we, ge) {
			t.Errorf("%s:\nwant %+v\ngot  %+v", p, we, ge)
		}
	}
}

func TestJournalReplayRebuildsCatalog(t *testing.T) {
	c, j := journaledCatalog()
	mutateEverything(t, c)

	c2 := replayInto(j)
	entriesEqual(t, c, c2)

	// Spot-check semantic content survived.
	e, err := c2.Lookup("/data/run1/a")
	if err != nil {
		t.Fatal(err)
	}
	if e.Size != 4096 {
		t.Errorf("size = %d, want 4096", e.Size)
	}
	if e.Attrs["checksum"] != "abc123" || e.Attrs["owner"] != `"quoted" user` {
		t.Errorf("attrs = %v", e.Attrs)
	}
	if len(e.Replicas) != 1 || e.Replicas[0].PhysicalKey != "obj-rep" {
		t.Errorf("replicas = %v", e.Replicas)
	}
	if c2.Exists("/data/doomed") || c2.Exists("/data/empty") || c2.Exists("/data/run1/b") {
		t.Error("removed entries resurrected by replay")
	}
	if !c2.Exists("/data/run1/b2") {
		t.Error("rename target missing after replay")
	}
}

func TestJournalReplayRestoresKeyAllocator(t *testing.T) {
	c, j := journaledCatalog()
	a, err := c.CreateFile("/a", "mem")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.CreateFile("/b", "mem")
	if err != nil {
		t.Fatal(err)
	}

	c2 := replayInto(j)
	nf, err := c2.CreateFile("/c", "mem")
	if err != nil {
		t.Fatal(err)
	}
	if nf.PhysicalKey == a.PhysicalKey || nf.PhysicalKey == b.PhysicalKey {
		t.Fatalf("post-replay key %q collides with pre-crash keys %q/%q",
			nf.PhysicalKey, a.PhysicalKey, b.PhysicalKey)
	}
}

func TestJournalReplayIdempotent(t *testing.T) {
	c, j := journaledCatalog()
	mutateEverything(t, c)

	// Replaying the whole log twice — a sloppy crash cut that re-applies
	// a full prefix — converges to the same state.
	c2 := New()
	c2.RegisterResource(ResourceInfo{Name: "mem", Kind: "memory", Host: "t"})
	c2.Replay(j.Records())
	c2.Replay(j.Records())
	entriesEqual(t, c, c2)

	e, err := c2.Lookup("/data/run1/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Replicas) != 1 {
		t.Fatalf("double replay duplicated replicas: %v", e.Replicas)
	}
}

func TestJournalReplayNotReJournaled(t *testing.T) {
	c, j := journaledCatalog()
	mutateEverything(t, c)
	before := j.Len()
	replayInto(j)
	if j.Len() != before {
		t.Fatalf("replay grew the journal: %d -> %d", before, j.Len())
	}
}

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	recs := []Record{
		{Op: JMkdir, Path: "/data", Time: 12345},
		{Op: JCreate, Path: "/data/a", Resource: "mem", Key: "obj-00000001", Seq: 1, Time: 99},
		{Op: JRemove, Path: "/data/a", Time: 100},
		{Op: JRename, Path: "/old name", Path2: `/new "quoted"`, Time: 101},
		{Op: JSetSize, Path: "/data/a", Size: 1 << 40, Time: 102},
		{Op: JGrowSize, Path: "/data/a", Size: -1, Time: 103},
		{Op: JSetAttr, Path: "/data/a", Attr: "k v", Value: "line\nbreak", Time: 104},
		{Op: JAddReplica, Path: "/data/a", Resource: "tape", Key: "obj@tape", Time: 105},
	}
	for _, r := range recs {
		line := EncodeRecord(nil, r)
		got, err := DecodeRecord(string(line))
		if err != nil {
			t.Fatalf("decode %q: %v", line, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Errorf("round trip:\nwant %+v\ngot  %+v\nline %q", r, got, line)
		}
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"v2 mkdir t=1",               // unknown version
		"v1 frobnicate t=1",          // unknown op
		`v1 mkdir t=x path="/a"`,     // bad int
		`v1 mkdir t=1 path="broken`,  // unterminated quote
		`v1 mkdir t=1 malformedtail`, // field without =
	} {
		if _, err := DecodeRecord(line); err == nil {
			t.Errorf("DecodeRecord(%q) accepted garbage", line)
		}
	}
	// Unknown fields from a newer writer are tolerated.
	if _, err := DecodeRecord(`v1 mkdir t=1 path="/a" future="x"`); err != nil {
		t.Errorf("unknown field rejected: %v", err)
	}
}

func TestJournalSerializationAndTornTail(t *testing.T) {
	c, j := journaledCatalog()
	mutateEverything(t, c)

	var buf bytes.Buffer
	if _, err := j.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, j.Records()) {
		t.Fatal("text round trip changed records")
	}

	// A torn final line (crash mid-append) is dropped, not fatal.
	torn := strings.TrimSuffix(buf.String(), "\n")
	torn = torn[:len(torn)-3]
	recs2, err := ReadJournal(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail: %v", err)
	}
	if len(recs2) != len(recs)-1 {
		t.Fatalf("torn tail: %d records, want %d", len(recs2), len(recs)-1)
	}

	// A torn line in the middle is corruption, not a crash artifact.
	mid := strings.Replace(buf.String(), "v1 setsize", "v# setsize", 1)
	if _, err := ReadJournal(strings.NewReader(mid)); err == nil {
		t.Fatal("mid-journal corruption accepted")
	}

	// The replayed text-form journal rebuilds the same catalog.
	c2 := New()
	c2.RegisterResource(ResourceInfo{Name: "mem", Kind: "memory", Host: "t"})
	c2.Replay(recs)
	entriesEqual(t, c, c2)
}

func TestJournalDetachStopsAppends(t *testing.T) {
	c, j := journaledCatalog()
	if err := c.Mkdir("/pre"); err != nil {
		t.Fatal(err)
	}
	n := j.Len()
	c.SetJournal(nil) // the crash: a dead server journals nothing
	if err := c.Mkdir("/post"); err != nil {
		t.Fatal(err)
	}
	if j.Len() != n {
		t.Fatalf("detached catalog still journaling: %d -> %d", n, j.Len())
	}
}
