package mcat

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// fnv1a is 32-bit FNV-1a over s, inlined (hash/fnv only exposes it
// through io.Writer, whose error-on-a-write-path shape the lint gates).
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// This file is the MCAT's placement service: the mapping from a logical
// file to the set of SRB servers that hold its stripes. Where the catalog
// maps paths to physical keys inside one server, the Placer maps each
// stripe slot of a path to an ordered replica set of server endpoints —
// the federation analogue of the SRB's resource/replica model.
//
// Placement is decided once per path, deterministically (a stable hash of
// the path picks the rotation through the registered servers), journaled
// through the same v1 line codec as catalog mutations, and replayed on
// restart — so a file's stripes are found on the same servers after an
// MCAT crash, and two clients asking concurrently get the same answer.

// ReplicaSet is the ordered server list for one stripe slot: index 0 is
// the primary, the rest are failover replicas in preference order.
type ReplicaSet []string

// Primary names the slot's first-choice server.
func (rs ReplicaSet) Primary() string { return rs[0] }

// Placer assigns stripe slots of logical files to registered server
// endpoints and remembers the assignment. Safe for concurrent use.
type Placer struct {
	mu       sync.Mutex
	servers  []string                // guarded by mu; registration order
	replicas int                     // guarded by mu; replica-set size incl. primary
	files    map[string][]ReplicaSet // guarded by mu; path -> slot -> servers
	seq      uint64                  // guarded by mu; placement decisions committed
	journal  Journal                 // guarded by mu; nil = journaling off
	now      func() time.Time        // guarded by mu; test seam
}

// NewPlacer returns an empty placer whose future placements carry
// replica-set size replicas (clamped to [1, len(servers)] at Place time).
func NewPlacer(replicas int) *Placer {
	if replicas < 1 {
		replicas = 1
	}
	return &Placer{
		replicas: replicas,
		files:    make(map[string][]ReplicaSet),
		now:      time.Now,
	}
}

// AddServer registers a server endpoint name. Registration order is part
// of the placement function, so every MCAT generation must register the
// same fleet in the same order (exactly like catalog resources, which are
// re-registered on startup rather than journaled).
func (p *Placer) AddServer(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.servers {
		if s == name {
			return
		}
	}
	p.servers = append(p.servers, name)
}

// Servers returns the registered endpoint names in registration order.
func (p *Placer) Servers() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.servers...)
}

// Replicas reports the configured replica-set size.
func (p *Placer) Replicas() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replicas
}

// Place returns the replica sets for path's stripe slots, deciding and
// journaling the placement on first call. stripes is the desired slot
// count; it is clamped to the fleet size so no two slots share a primary.
// A path that already has a placement keeps it regardless of stripes —
// placement is stable for the life of the file.
func (p *Placer) Place(path string, stripes int) ([]ReplicaSet, error) {
	path, err := Normalize(path)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if sets, ok := p.files[path]; ok {
		return cloneSets(sets), nil
	}
	n := len(p.servers)
	if n == 0 {
		return nil, fmt.Errorf("%w: placer has no servers", ErrNoResource)
	}
	if stripes < 1 {
		stripes = 1
	}
	if stripes > n {
		stripes = n
	}
	repl := p.replicas
	if repl > n {
		repl = n
	}
	base := int(fnv1a(path) % uint32(n))
	sets := make([]ReplicaSet, stripes)
	for slot := range sets {
		rs := make(ReplicaSet, repl)
		for j := 0; j < repl; j++ {
			rs[j] = p.servers[(base+slot+j)%n]
		}
		sets[slot] = rs
	}
	p.files[path] = sets
	p.seq++
	if p.journal != nil {
		p.journal.Append(Record{
			Op:    JPlace,
			Path:  path,
			Value: EncodePlacement(sets),
			Seq:   p.seq,
			Time:  p.now().UnixNano(),
		})
	}
	return cloneSets(sets), nil
}

// Lookup returns the existing placement for path without deciding one.
func (p *Placer) Lookup(path string) ([]ReplicaSet, bool) {
	path, err := Normalize(path)
	if err != nil {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	sets, ok := p.files[path]
	if !ok {
		return nil, false
	}
	return cloneSets(sets), true
}

// Paths lists the placed paths, sorted (tests inspect the table).
func (p *Placer) Paths() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.files))
	for path := range p.files {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

// Seq reports the placement sequence high-water mark.
func (p *Placer) Seq() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq
}

// SetJournal attaches a journal that receives every subsequent placement
// decision. Attach after Replay (replayed records are not re-journaled);
// detach with nil — the crash model, as for the catalog.
func (p *Placer) SetJournal(j Journal) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.journal = j
}

// Replay applies journal records in order. Non-placement records are
// skipped, so a placer may share a journal stream with a catalog. Replay
// is idempotent and last-writer-wins, and restores the sequence
// high-water mark so post-restart placements journal with fresh numbers.
func (p *Placer) Replay(recs []Record) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range recs {
		if r.Op != JPlace {
			continue
		}
		sets, err := DecodePlacement(r.Value)
		if err != nil {
			continue // defensive, mirroring applyLocked's trust model
		}
		p.files[r.Path] = sets
		if r.Seq > p.seq {
			p.seq = r.Seq
		}
	}
}

// EncodePlacement renders replica sets in the journal Value form:
// slots separated by ';', servers within a slot by ','.
func EncodePlacement(sets []ReplicaSet) string {
	slots := make([]string, len(sets))
	for i, rs := range sets {
		slots[i] = strings.Join(rs, ",")
	}
	return strings.Join(slots, ";")
}

// DecodePlacement parses EncodePlacement output.
func DecodePlacement(v string) ([]ReplicaSet, error) {
	if v == "" {
		return nil, fmt.Errorf("mcat: empty placement value")
	}
	slots := strings.Split(v, ";")
	sets := make([]ReplicaSet, len(slots))
	for i, s := range slots {
		servers := strings.Split(s, ",")
		for _, name := range servers {
			if name == "" {
				return nil, fmt.Errorf("mcat: malformed placement %q", v)
			}
		}
		sets[i] = servers
	}
	return sets, nil
}

func cloneSets(sets []ReplicaSet) []ReplicaSet {
	out := make([]ReplicaSet, len(sets))
	for i, rs := range sets {
		out[i] = append(ReplicaSet(nil), rs...)
	}
	return out
}
