package mcat

import (
	"fmt"
	"sync"
	"testing"
)

func newTestCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	c.RegisterResource(ResourceInfo{Name: "mem", Kind: "memory", Host: "orion"})
	return c
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"/":           "/",
		"/a/b":        "/a/b",
		"/a//b/":      "/a/b",
		"/a/./b/../c": "/a/c",
	}
	for in, want := range cases {
		got, err := Normalize(in)
		if err != nil || got != want {
			t.Errorf("Normalize(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "relative", "a/b"} {
		if _, err := Normalize(bad); err != ErrBadPath {
			t.Errorf("Normalize(%q) = %v, want ErrBadPath", bad, err)
		}
	}
}

func TestCreateLookupRemove(t *testing.T) {
	c := newTestCatalog(t)
	e, err := c.CreateFile("/data.bin", "mem")
	if err != nil {
		t.Fatal(err)
	}
	if e.PhysicalKey == "" || e.Resource != "mem" || e.Type != TypeFile {
		t.Fatalf("entry = %+v", e)
	}
	if _, err := c.CreateFile("/data.bin", "mem"); err != ErrExists {
		t.Fatalf("duplicate = %v", err)
	}
	if _, err := c.CreateFile("/data2", "nosuch"); err != ErrNoResource {
		t.Fatalf("bad resource = %v", err)
	}
	if _, err := c.CreateFile("/missing/coll/f", "mem"); err != ErrNotFound {
		t.Fatalf("missing parent = %v", err)
	}

	got, err := c.Lookup("/data.bin")
	if err != nil || got.Path != "/data.bin" {
		t.Fatalf("lookup: %v %+v", err, got)
	}
	// Mutating the returned copy must not affect the catalog.
	got.Size = 9999
	again, _ := c.Lookup("/data.bin")
	if again.Size != 0 {
		t.Fatal("Lookup returned a shared entry")
	}

	if err := c.Remove("/data.bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("/data.bin"); err != ErrNotFound {
		t.Fatalf("after remove: %v", err)
	}
	if err := c.Remove("/data.bin"); err != ErrNotFound {
		t.Fatalf("double remove: %v", err)
	}
}

func TestCollections(t *testing.T) {
	c := newTestCatalog(t)
	if err := c.Mkdir("/proj"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/proj"); err != ErrExists {
		t.Fatalf("dup mkdir = %v", err)
	}
	if err := c.MkdirAll("/proj/run1/out"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFile("/proj/run1/out/f1", "mem"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateFile("/proj/run1/out/f2", "mem"); err != nil {
		t.Fatal(err)
	}

	ls, err := c.List("/proj/run1/out")
	if err != nil || len(ls) != 2 {
		t.Fatalf("list = %v, %v", ls, err)
	}
	if ls[0].Path != "/proj/run1/out/f1" || ls[1].Path != "/proj/run1/out/f2" {
		t.Fatalf("list order: %v %v", ls[0].Path, ls[1].Path)
	}
	// Direct children only.
	top, err := c.List("/proj")
	if err != nil || len(top) != 1 || top[0].Path != "/proj/run1" {
		t.Fatalf("top list = %+v, %v", top, err)
	}

	if err := c.Rmdir("/proj/run1/out"); err != ErrNotEmpty {
		t.Fatalf("rmdir nonempty = %v", err)
	}
	if err := c.Remove("/proj/run1/out/f1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("/proj/run1/out/f2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmdir("/proj/run1/out"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmdir("/"); err != ErrNotEmpty {
		t.Fatalf("rmdir root = %v", err)
	}
	if err := c.Remove("/proj"); err != ErrIsDir {
		t.Fatalf("remove collection = %v", err)
	}
	if _, err := c.List("/proj/run1/out"); err != ErrNotFound {
		t.Fatalf("list removed = %v", err)
	}
}

func TestMkdirAllOverFile(t *testing.T) {
	c := newTestCatalog(t)
	if _, err := c.CreateFile("/f", "mem"); err != nil {
		t.Fatal(err)
	}
	if err := c.MkdirAll("/f"); err != ErrNotDir {
		t.Fatalf("MkdirAll over file = %v", err)
	}
}

func TestSizesAndAttrs(t *testing.T) {
	c := newTestCatalog(t)
	c.CreateFile("/f", "mem")
	if err := c.SetSize("/f", 100); err != nil {
		t.Fatal(err)
	}
	if err := c.GrowSize("/f", 50); err != nil {
		t.Fatal(err)
	}
	e, _ := c.Lookup("/f")
	if e.Size != 100 {
		t.Fatalf("GrowSize shrank: %d", e.Size)
	}
	c.GrowSize("/f", 200)
	e, _ = c.Lookup("/f")
	if e.Size != 200 {
		t.Fatalf("GrowSize didn't grow: %d", e.Size)
	}

	if err := c.SetAttr("/f", "owner", "alin"); err != nil {
		t.Fatal(err)
	}
	v, err := c.GetAttr("/f", "owner")
	if err != nil || v != "alin" {
		t.Fatalf("GetAttr = %q, %v", v, err)
	}
	if _, err := c.GetAttr("/f", "nope"); err != ErrNotFound {
		t.Fatalf("missing attr = %v", err)
	}
	c.CreateFile("/g", "mem")
	c.SetAttr("/g", "owner", "alin")
	c.SetAttr("/g", "kind", "checkpoint")
	got := c.QueryAttr("owner", "alin")
	if len(got) != 2 || got[0] != "/f" || got[1] != "/g" {
		t.Fatalf("QueryAttr = %v", got)
	}
	if err := c.SetSize("/nope", 1); err != ErrNotFound {
		t.Fatalf("SetSize missing = %v", err)
	}
}

func TestReplicasAndRename(t *testing.T) {
	c := newTestCatalog(t)
	c.RegisterResource(ResourceInfo{Name: "tape", Kind: "tape"})
	c.CreateFile("/f", "mem")
	if err := c.AddReplica("/f", Replica{Resource: "tape", PhysicalKey: "t-1"}); err != nil {
		t.Fatal(err)
	}
	e, _ := c.Lookup("/f")
	if len(e.Replicas) != 1 || e.Replicas[0].Resource != "tape" {
		t.Fatalf("replicas = %+v", e.Replicas)
	}

	if err := c.Rename("/f", "/renamed"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("/f"); err != ErrNotFound {
		t.Fatal("old path survives rename")
	}
	e, err := c.Lookup("/renamed")
	if err != nil || e.PhysicalKey == "" {
		t.Fatalf("renamed entry: %+v, %v", e, err)
	}
	c.CreateFile("/other", "mem")
	if err := c.Rename("/renamed", "/other"); err != ErrExists {
		t.Fatalf("rename onto existing = %v", err)
	}
	if err := c.Rename("/missing", "/x"); err != ErrNotFound {
		t.Fatalf("rename missing = %v", err)
	}
}

func TestResources(t *testing.T) {
	c := New()
	c.RegisterResource(ResourceInfo{Name: "b"})
	c.RegisterResource(ResourceInfo{Name: "a"})
	rs := c.Resources()
	if len(rs) != 2 || rs[0].Name != "a" || rs[1].Name != "b" {
		t.Fatalf("resources = %+v", rs)
	}
	if !c.HasResource("a") || c.HasResource("zzz") {
		t.Fatal("HasResource wrong")
	}
}

func TestUniquePhysicalKeys(t *testing.T) {
	c := newTestCatalog(t)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		e, err := c.CreateFile(fmt.Sprintf("/f%03d", i), "mem")
		if err != nil {
			t.Fatal(err)
		}
		if seen[e.PhysicalKey] {
			t.Fatalf("duplicate physical key %s", e.PhysicalKey)
		}
		seen[e.PhysicalKey] = true
	}
}

func TestConcurrentCatalog(t *testing.T) {
	c := newTestCatalog(t)
	c.Mkdir("/dir")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p := fmt.Sprintf("/dir/g%d-f%d", g, i)
				if _, err := c.CreateFile(p, "mem"); err != nil {
					t.Errorf("create %s: %v", p, err)
					return
				}
				c.SetSize(p, int64(i))
				c.SetAttr(p, "g", fmt.Sprint(g))
				c.Lookup(p)
				c.List("/dir")
			}
		}(g)
	}
	wg.Wait()
	ls, err := c.List("/dir")
	if err != nil || len(ls) != 400 {
		t.Fatalf("final list = %d entries, %v", len(ls), err)
	}
}
