// Package mcat implements the Metadata Catalog service (MCAT) of the
// Storage Resource Broker: the logical namespace of collections and data
// objects, their attributes, and the mapping from logical paths to physical
// objects on registered storage resources.
package mcat

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// Catalog errors.
var (
	ErrNotFound   = errors.New("mcat: no such entry")
	ErrExists     = errors.New("mcat: entry already exists")
	ErrNotDir     = errors.New("mcat: not a collection")
	ErrIsDir      = errors.New("mcat: is a collection")
	ErrNotEmpty   = errors.New("mcat: collection not empty")
	ErrNoResource = errors.New("mcat: unknown resource")
	ErrBadPath    = errors.New("mcat: invalid path")
	// ErrQuotaExceeded refuses a size growth that would push the owning
	// tenant's total stored bytes over its configured quota.
	ErrQuotaExceeded = errors.New("mcat: tenant quota exceeded")
)

// EntryType distinguishes data objects from collections.
type EntryType uint8

// Entry types.
const (
	TypeFile EntryType = iota
	TypeCollection
)

func (t EntryType) String() string {
	if t == TypeCollection {
		return "collection"
	}
	return "file"
}

// Replica records one physical copy of a data object.
type Replica struct {
	Resource    string
	PhysicalKey string
}

// Entry describes one logical namespace node.
type Entry struct {
	Path        string
	Type        EntryType
	Size        int64
	Created     time.Time
	Modified    time.Time
	Resource    string // primary resource for files
	PhysicalKey string // key in the primary resource's store
	Owner       string // tenant that created the file; "" = unowned/anonymous
	Attrs       map[string]string
	Replicas    []Replica
}

func (e *Entry) clone() *Entry {
	c := *e
	if e.Attrs != nil {
		c.Attrs = make(map[string]string, len(e.Attrs))
		for k, v := range e.Attrs {
			c.Attrs[k] = v
		}
	}
	c.Replicas = append([]Replica(nil), e.Replicas...)
	return &c
}

// ResourceInfo describes a registered storage resource.
type ResourceInfo struct {
	Name string
	Kind string // e.g. "memory", "disk", "tape"
	Host string
}

// Catalog is a thread-safe in-memory MCAT.
type Catalog struct {
	mu        sync.RWMutex
	entries   map[string]*Entry
	resources map[string]ResourceInfo
	seq       uint64
	now       func() time.Time
	journal   Journal // guarded by mu; mutation log, nil = journaling off

	// usage is bytes stored per owner, maintained incrementally by every
	// size-changing mutation (and by Replay, so it survives crash/restart
	// through the journaled size records without a journal format change).
	usage map[string]int64 // guarded by mu
	// quotas caps usage per owner. Quotas are configuration, not journaled
	// state: the server re-applies them on startup like resource
	// registrations.
	quotas map[string]int64 // guarded by mu
}

// New returns a catalog containing only the root collection "/".
func New() *Catalog {
	c := &Catalog{
		entries:   make(map[string]*Entry),
		resources: make(map[string]ResourceInfo),
		now:       time.Now,
		usage:     make(map[string]int64),
		quotas:    make(map[string]int64),
	}
	t := c.now()
	c.entries["/"] = &Entry{Path: "/", Type: TypeCollection, Created: t, Modified: t}
	return c
}

// Normalize canonicalizes a logical path; it must be absolute.
func Normalize(p string) (string, error) {
	if p == "" || !strings.HasPrefix(p, "/") {
		return "", ErrBadPath
	}
	return path.Clean(p), nil
}

// RegisterResource adds a storage resource to the catalog.
func (c *Catalog) RegisterResource(info ResourceInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resources[info.Name] = info
}

// Resources lists registered resources sorted by name.
func (c *Catalog) Resources() []ResourceInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]ResourceInfo, 0, len(c.resources))
	for _, r := range c.resources {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HasResource reports whether a resource is registered.
func (c *Catalog) HasResource(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.resources[name]
	return ok
}

// CreateFile registers a new data object at the logical path on the given
// resource, assigning a fresh physical key. The parent collection must
// already exist. The file is unowned (no tenant); see CreateFileAs.
func (c *Catalog) CreateFile(p, resource string) (*Entry, error) {
	return c.CreateFileAs(p, resource, "")
}

// CreateFileAs is CreateFile with an owning tenant: the file's bytes are
// charged against owner's usage (and quota) as it grows.
func (c *Catalog) CreateFileAs(p, resource, owner string) (*Entry, error) {
	p, err := Normalize(p)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.resources[resource]; !ok {
		return nil, ErrNoResource
	}
	if _, ok := c.entries[p]; ok {
		return nil, ErrExists
	}
	if err := c.checkParent(p); err != nil {
		return nil, err
	}
	c.seq++
	t := c.now()
	e := &Entry{
		Path:        p,
		Type:        TypeFile,
		Created:     t,
		Modified:    t,
		Resource:    resource,
		PhysicalKey: fmt.Sprintf("obj-%08d", c.seq),
		Owner:       owner,
	}
	c.entries[p] = e
	c.touchParentLocked(p)
	c.logLocked(Record{Op: JCreate, Path: p, Resource: resource,
		Key: e.PhysicalKey, Seq: c.seq, Time: t.UnixNano(), Owner: owner})
	return e.clone(), nil
}

// chargeLocked moves an owner's usage by delta bytes. Unowned entries
// (owner "") are not tracked.
func (c *Catalog) chargeLocked(owner string, delta int64) {
	if owner == "" || delta == 0 {
		return
	}
	//lint:allow guardedfield -- contract: only called with c.mu held
	usage := c.usage
	u := usage[owner] + delta
	if u <= 0 {
		delete(usage, owner)
		return
	}
	usage[owner] = u
}

// SetQuota caps owner's stored bytes; zero or negative removes the cap.
// Quotas are configuration (re-applied on startup), not journaled state.
func (c *Catalog) SetQuota(owner string, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if bytes <= 0 {
		delete(c.quotas, owner)
		return
	}
	c.quotas[owner] = bytes
}

// Usage reports owner's current stored bytes.
func (c *Catalog) Usage(owner string) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.usage[owner]
}

// UsageAll snapshots stored bytes for every owner with nonzero usage.
func (c *Catalog) UsageAll() map[string]int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int64, len(c.usage))
	for k, v := range c.usage {
		out[k] = v
	}
	return out
}

// CheckGrow reports whether growing the file at p to newSize would push
// its owner over quota (ErrQuotaExceeded). It does not mutate anything:
// the server pre-checks before committing bytes to storage, so refused
// writes leave no stored-but-unaccounted data behind.
func (c *Catalog) CheckGrow(p string, newSize int64) error {
	p, err := Normalize(p)
	if err != nil {
		return err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[p]
	if !ok {
		return ErrNotFound
	}
	if e.Type != TypeFile {
		return ErrIsDir
	}
	if e.Owner == "" || newSize <= e.Size {
		return nil
	}
	quota, capped := c.quotas[e.Owner]
	if !capped {
		return nil
	}
	if c.usage[e.Owner]+(newSize-e.Size) > quota {
		return fmt.Errorf("%w: tenant %q at %d of %d bytes", ErrQuotaExceeded,
			e.Owner, c.usage[e.Owner], quota)
	}
	return nil
}

func (c *Catalog) checkParent(p string) error {
	parent := path.Dir(p)
	pe, ok := c.entries[parent]
	if !ok {
		return ErrNotFound
	}
	if pe.Type != TypeCollection {
		return ErrNotDir
	}
	return nil
}

func (c *Catalog) touchParentLocked(p string) {
	if pe, ok := c.entries[path.Dir(p)]; ok {
		pe.Modified = c.now()
	}
}

// Lookup returns a copy of the entry at the path.
func (c *Catalog) Lookup(p string) (*Entry, error) {
	p, err := Normalize(p)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[p]
	if !ok {
		return nil, ErrNotFound
	}
	return e.clone(), nil
}

// Exists reports whether a path is present.
func (c *Catalog) Exists(p string) bool {
	_, err := c.Lookup(p)
	return err == nil
}

// Mkdir creates a collection; the parent must exist.
func (c *Catalog) Mkdir(p string) error {
	p, err := Normalize(p)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[p]; ok {
		return ErrExists
	}
	if err := c.checkParent(p); err != nil {
		return err
	}
	t := c.now()
	c.entries[p] = &Entry{Path: p, Type: TypeCollection, Created: t, Modified: t}
	c.touchParentLocked(p)
	c.logLocked(Record{Op: JMkdir, Path: p, Time: t.UnixNano()})
	return nil
}

// MkdirAll creates a collection and any missing ancestors.
func (c *Catalog) MkdirAll(p string) error {
	p, err := Normalize(p)
	if err != nil {
		return err
	}
	if p == "/" {
		return nil
	}
	var parts []string
	for q := p; q != "/"; q = path.Dir(q) {
		parts = append(parts, q)
	}
	for i := len(parts) - 1; i >= 0; i-- {
		switch err := c.Mkdir(parts[i]); err {
		case nil, ErrExists:
		default:
			return err
		}
	}
	// The leaf must be a collection.
	e, err := c.Lookup(p)
	if err != nil {
		return err
	}
	if e.Type != TypeCollection {
		return ErrNotDir
	}
	return nil
}

// Remove deletes a data object entry.
func (c *Catalog) Remove(p string) error {
	p, err := Normalize(p)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[p]
	if !ok {
		return ErrNotFound
	}
	if e.Type == TypeCollection {
		return ErrIsDir
	}
	c.chargeLocked(e.Owner, -e.Size)
	delete(c.entries, p)
	c.touchParentLocked(p)
	c.logLocked(Record{Op: JRemove, Path: p})
	return nil
}

// Rmdir deletes an empty collection.
func (c *Catalog) Rmdir(p string) error {
	p, err := Normalize(p)
	if err != nil {
		return err
	}
	if p == "/" {
		return ErrNotEmpty
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[p]
	if !ok {
		return ErrNotFound
	}
	if e.Type != TypeCollection {
		return ErrNotDir
	}
	prefix := p + "/"
	for q := range c.entries {
		if strings.HasPrefix(q, prefix) {
			return ErrNotEmpty
		}
	}
	delete(c.entries, p)
	c.touchParentLocked(p)
	c.logLocked(Record{Op: JRmdir, Path: p})
	return nil
}

// List returns the direct children of a collection, sorted by path.
func (c *Catalog) List(p string) ([]*Entry, error) {
	p, err := Normalize(p)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[p]
	if !ok {
		return nil, ErrNotFound
	}
	if e.Type != TypeCollection {
		return nil, ErrNotDir
	}
	prefix := p + "/"
	if p == "/" {
		prefix = "/"
	}
	var out []*Entry
	for q, ent := range c.entries {
		if q == p || !strings.HasPrefix(q, prefix) {
			continue
		}
		rest := q[len(prefix):]
		if strings.Contains(rest, "/") {
			continue // not a direct child
		}
		out = append(out, ent.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// SetSize records a data object's new size and bumps its mtime.
func (c *Catalog) SetSize(p string, size int64) error {
	return c.mutateFile(p, func(e *Entry) *Record {
		c.chargeLocked(e.Owner, size-e.Size)
		e.Size = size
		e.Modified = c.now()
		return &Record{Op: JSetSize, Size: size, Time: e.Modified.UnixNano()}
	})
}

// GrowSize raises the recorded size to at least size (concurrent strided
// writers from many cluster nodes race to extend the same file).
func (c *Catalog) GrowSize(p string, size int64) error {
	return c.mutateFile(p, func(e *Entry) *Record {
		e.Modified = c.now()
		if size <= e.Size {
			// No growth: don't journal every write of a busy file.
			return nil
		}
		c.chargeLocked(e.Owner, size-e.Size)
		e.Size = size
		return &Record{Op: JGrowSize, Size: size, Time: e.Modified.UnixNano()}
	})
}

// mutateFile applies fn to the file entry at p under the lock; a non-nil
// record returned by fn is journaled (its Path is filled in here).
func (c *Catalog) mutateFile(p string, fn func(*Entry) *Record) error {
	p, err := Normalize(p)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[p]
	if !ok {
		return ErrNotFound
	}
	if e.Type != TypeFile {
		return ErrIsDir
	}
	if rec := fn(e); rec != nil {
		rec.Path = p
		c.logLocked(*rec)
	}
	return nil
}

// SetAttr attaches a metadata attribute to an entry.
func (c *Catalog) SetAttr(p, key, value string) error {
	p, err := Normalize(p)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[p]
	if !ok {
		return ErrNotFound
	}
	if e.Attrs == nil {
		e.Attrs = make(map[string]string)
	}
	e.Attrs[key] = value
	c.logLocked(Record{Op: JSetAttr, Path: p, Attr: key, Value: value})
	return nil
}

// GetAttr fetches a metadata attribute.
func (c *Catalog) GetAttr(p, key string) (string, error) {
	e, err := c.Lookup(p)
	if err != nil {
		return "", err
	}
	v, ok := e.Attrs[key]
	if !ok {
		return "", ErrNotFound
	}
	return v, nil
}

// QueryAttr returns the paths of all entries whose attribute key equals
// value, sorted. This is the (much simplified) MCAT query interface.
func (c *Catalog) QueryAttr(key, value string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for p, e := range c.entries {
		if e.Attrs[key] == value {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// AddReplica records an additional physical copy of a data object.
func (c *Catalog) AddReplica(p string, r Replica) error {
	return c.mutateFile(p, func(e *Entry) *Record {
		e.Replicas = append(e.Replicas, r)
		return &Record{Op: JAddReplica, Resource: r.Resource, Key: r.PhysicalKey}
	})
}

// Rename moves a data object to a new logical path (same resource).
func (c *Catalog) Rename(oldPath, newPath string) error {
	op, err := Normalize(oldPath)
	if err != nil {
		return err
	}
	np, err := Normalize(newPath)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[op]
	if !ok {
		return ErrNotFound
	}
	if e.Type != TypeFile {
		return ErrIsDir
	}
	if _, ok := c.entries[np]; ok {
		return ErrExists
	}
	if err := c.checkParent(np); err != nil {
		return err
	}
	delete(c.entries, op)
	e.Path = np
	e.Modified = c.now()
	c.entries[np] = e
	c.logLocked(Record{Op: JRename, Path: op, Path2: np, Time: e.Modified.UnixNano()})
	return nil
}

// Len reports the number of entries including collections.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
