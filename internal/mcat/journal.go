package mcat

import (
	"fmt"
	"io"
	"path"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file implements the MCAT mutation journal: an append-only log of
// every committed namespace mutation, replayable on a fresh catalog to
// reconstruct the logical namespace and replica map after a server crash.
//
// Design points:
//
//   - Records are self-contained (full paths, keys, sizes, absolute
//     times), never deltas against journal position, so a tail of
//     re-applied records after an imprecise crash cut converges: replay
//     is idempotent and last-writer-wins.
//   - The journal is appended while the catalog lock is held, so record
//     order is exactly commit order — no reordering window between a
//     mutation committing and its record landing.
//   - Resource registrations are not journaled: the server re-registers
//     its resources on startup (AddResource) before replaying, the same
//     way it did on first boot.
//   - CreateFile records carry the sequence number behind their physical
//     key; replay restores the allocator high-water mark so keys minted
//     after a restart never collide with pre-crash objects.

// JournalOp identifies the kind of one journaled mutation.
type JournalOp uint8

// Journaled mutation kinds.
const (
	JMkdir JournalOp = iota + 1
	JCreate
	JRemove
	JRmdir
	JRename
	JSetSize
	JGrowSize
	JSetAttr
	JAddReplica
	// JPlace records a federation placement decision (see placement.go):
	// Path is the logical file, Value the encoded per-slot replica sets,
	// Seq the placement allocator high-water mark. Applied by
	// Placer.Replay; the catalog ignores it.
	JPlace
)

var jopNames = map[JournalOp]string{
	JMkdir:      "mkdir",
	JCreate:     "create",
	JRemove:     "remove",
	JRmdir:      "rmdir",
	JRename:     "rename",
	JSetSize:    "setsize",
	JGrowSize:   "growsize",
	JSetAttr:    "setattr",
	JAddReplica: "replica",
	JPlace:      "place",
}

var jopByName = func() map[string]JournalOp {
	m := make(map[string]JournalOp, len(jopNames))
	for op, n := range jopNames {
		m[n] = op
	}
	return m
}()

func (op JournalOp) String() string {
	if n, ok := jopNames[op]; ok {
		return n
	}
	return fmt.Sprintf("jop(%d)", uint8(op))
}

// Record is one journaled namespace mutation. Unused fields are zero.
type Record struct {
	Op       JournalOp
	Path     string
	Path2    string // rename destination
	Resource string // create: primary resource; replica: replica resource
	Key      string // physical key (create, replica)
	Size     int64  // setsize / growsize
	Seq      uint64 // create: allocator sequence behind Key
	Time     int64  // mutation time, unix nanoseconds
	Attr     string // setattr key
	Value    string // setattr value
	Owner    string // create: owning tenant ("" = unowned)
}

// Journal receives every committed catalog mutation, in commit order.
// Append is called with the catalog lock held and must not block on the
// catalog (or for long at all).
type Journal interface {
	Append(Record)
}

// MemJournal is an in-memory append-only Journal, shared across server
// generations by the test cluster: the previous server's catalog wrote
// it, the restarted server's catalog replays it.
type MemJournal struct {
	mu   sync.Mutex
	recs []Record // guarded by mu
}

// NewMemJournal returns an empty journal.
func NewMemJournal() *MemJournal { return &MemJournal{} }

// Append implements Journal.
func (j *MemJournal) Append(r Record) {
	j.mu.Lock()
	j.recs = append(j.recs, r)
	j.mu.Unlock()
}

// Len reports the number of records.
func (j *MemJournal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// Records returns a snapshot copy of the log.
func (j *MemJournal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.recs...)
}

// EncodeRecord appends the one-line text form of r to dst (including the
// trailing newline). The format is versioned, line-oriented and
// append-friendly:
//
//	v1 <op> t=<unixnano> path=<quoted> [path2=] [res=] [key=] [size=] [seq=] [attr=] [val=]
//
// String fields are Go-quoted; zero-valued fields are omitted.
func EncodeRecord(dst []byte, r Record) []byte {
	dst = append(dst, "v1 "...)
	dst = append(dst, r.Op.String()...)
	dst = append(dst, " t="...)
	dst = strconv.AppendInt(dst, r.Time, 10)
	appendQ := func(k, v string) {
		if v != "" {
			dst = append(dst, ' ')
			dst = append(dst, k...)
			dst = append(dst, '=')
			dst = strconv.AppendQuote(dst, v)
		}
	}
	appendQ("path", r.Path)
	appendQ("path2", r.Path2)
	appendQ("res", r.Resource)
	appendQ("key", r.Key)
	if r.Size != 0 {
		dst = append(dst, " size="...)
		dst = strconv.AppendInt(dst, r.Size, 10)
	}
	if r.Seq != 0 {
		dst = append(dst, " seq="...)
		dst = strconv.AppendUint(dst, r.Seq, 10)
	}
	appendQ("attr", r.Attr)
	appendQ("val", r.Value)
	// owner= was added for tenant quotas; pre-tenant readers skip unknown
	// fields, so old and new journal lines interoperate both ways.
	appendQ("owner", r.Owner)
	return append(dst, '\n')
}

// DecodeRecord parses one line produced by EncodeRecord.
func DecodeRecord(line string) (Record, error) {
	var r Record
	line = strings.TrimSuffix(line, "\n")
	rest, ok := strings.CutPrefix(line, "v1 ")
	if !ok {
		return r, fmt.Errorf("mcat: journal line has unknown version: %q", line)
	}
	opName, rest, _ := strings.Cut(rest, " ")
	r.Op, ok = jopByName[opName]
	if !ok {
		return r, fmt.Errorf("mcat: journal line has unknown op %q", opName)
	}
	for rest != "" {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			break
		}
		key, after, ok := strings.Cut(rest, "=")
		if !ok {
			return r, fmt.Errorf("mcat: malformed journal field %q", rest)
		}
		var sval string
		var err error
		if strings.HasPrefix(after, `"`) {
			sval, err = strconv.QuotedPrefix(after)
			if err != nil {
				return r, fmt.Errorf("mcat: malformed quoted field %s: %v", key, err)
			}
			rest = after[len(sval):]
			sval, err = strconv.Unquote(sval)
			if err != nil {
				return r, fmt.Errorf("mcat: malformed quoted field %s: %v", key, err)
			}
		} else {
			sval, rest, _ = strings.Cut(after, " ")
			rest = " " + rest
		}
		switch key {
		case "t":
			r.Time, err = strconv.ParseInt(sval, 10, 64)
		case "size":
			r.Size, err = strconv.ParseInt(sval, 10, 64)
		case "seq":
			r.Seq, err = strconv.ParseUint(sval, 10, 64)
		case "path":
			r.Path = sval
		case "path2":
			r.Path2 = sval
		case "res":
			r.Resource = sval
		case "key":
			r.Key = sval
		case "attr":
			r.Attr = sval
		case "val":
			r.Value = sval
		case "owner":
			r.Owner = sval
		default:
			// Unknown fields from a newer writer are skipped, not fatal.
		}
		if err != nil {
			return r, fmt.Errorf("mcat: malformed journal field %s=%q: %v", key, sval, err)
		}
	}
	return r, nil
}

// WriteTo serializes the journal in text form (e.g. to persist it).
func (j *MemJournal) WriteTo(w io.Writer) (int64, error) {
	var buf []byte
	for _, r := range j.Records() {
		buf = EncodeRecord(buf, r)
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadJournal parses a text-form journal back into records, tolerating a
// torn final line (the crash case for a file-backed journal): a trailing
// partial record is dropped, any other malformed line is an error.
func ReadJournal(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var out []Record
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		rec, err := DecodeRecord(line)
		if err != nil {
			if i == len(lines)-1 {
				break // torn tail from a crash mid-append
			}
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// SetJournal attaches a journal that will receive every subsequent
// mutation. Attach after Replay (replayed records are not re-journaled
// by Replay itself); detach with nil — the crash model for a killed
// server whose catalog must stop reaching the surviving journal.
func (c *Catalog) SetJournal(j Journal) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = j
}

// Replay applies journal records to the catalog in order. Replay is
// idempotent (re-applying a suffix converges) and last-writer-wins; it
// restores the physical-key allocator high-water mark and entry
// timestamps. Call it on a fresh catalog after registering resources and
// before SetJournal.
func (c *Catalog) Replay(recs []Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range recs {
		c.applyLocked(r)
	}
}

// applyLocked applies one record. Records are trusted (they were emitted
// by a catalog that already validated the mutation), so application is
// defensive rather than strict: missing ancestors are recreated, deletes
// of absent entries are no-ops.
func (c *Catalog) applyLocked(r Record) {
	t := time.Unix(0, r.Time)
	switch r.Op {
	case JMkdir:
		c.ensureDirLocked(r.Path, t)
	case JCreate:
		if r.Seq > c.seq {
			c.seq = r.Seq
		}
		c.ensureDirLocked(parentOf(r.Path), t)
		if old, ok := c.entries[r.Path]; ok && old.Type == TypeFile {
			// Idempotent re-application (a replayed suffix): the fresh
			// zero-size entry replaces the old one, so its bytes come off
			// the owner's usage first.
			c.chargeLocked(old.Owner, -old.Size)
		}
		c.entries[r.Path] = &Entry{
			Path:        r.Path,
			Type:        TypeFile,
			Created:     t,
			Modified:    t,
			Resource:    r.Resource,
			PhysicalKey: r.Key,
			Owner:       r.Owner,
		}
	case JRemove:
		if e, ok := c.entries[r.Path]; ok && e.Type == TypeFile {
			c.chargeLocked(e.Owner, -e.Size)
			delete(c.entries, r.Path)
		}
	case JRmdir:
		if e, ok := c.entries[r.Path]; ok && e.Type == TypeCollection {
			delete(c.entries, r.Path)
		}
	case JRename:
		e, ok := c.entries[r.Path]
		if !ok {
			return // already applied, or the source vanished later in the log
		}
		delete(c.entries, r.Path)
		e.Path = r.Path2
		e.Modified = t
		c.entries[r.Path2] = e
	case JSetSize:
		if e, ok := c.entries[r.Path]; ok && e.Type == TypeFile {
			c.chargeLocked(e.Owner, r.Size-e.Size)
			e.Size = r.Size
			e.Modified = t
		}
	case JGrowSize:
		if e, ok := c.entries[r.Path]; ok && e.Type == TypeFile {
			if r.Size > e.Size {
				c.chargeLocked(e.Owner, r.Size-e.Size)
				e.Size = r.Size
			}
			e.Modified = t
		}
	case JSetAttr:
		if e, ok := c.entries[r.Path]; ok {
			if e.Attrs == nil {
				e.Attrs = make(map[string]string)
			}
			e.Attrs[r.Attr] = r.Value
		}
	case JAddReplica:
		if e, ok := c.entries[r.Path]; ok && e.Type == TypeFile {
			for _, rep := range e.Replicas {
				if rep.Resource == r.Resource && rep.PhysicalKey == r.Key {
					return // idempotent re-application
				}
			}
			e.Replicas = append(e.Replicas, Replica{Resource: r.Resource, PhysicalKey: r.Key})
		}
	}
}

// ensureDirLocked materializes a collection and any missing ancestors.
func (c *Catalog) ensureDirLocked(p string, t time.Time) {
	if p == "" {
		return
	}
	for q := p; q != "/"; q = parentOf(q) {
		if _, ok := c.entries[q]; ok {
			break
		}
		c.entries[q] = &Entry{Path: q, Type: TypeCollection, Created: t, Modified: t}
	}
}

// logLocked appends a record to the attached journal, stamping the
// mutation time. Callers hold c.mu, which is what serializes journal
// order with commit order.
func (c *Catalog) logLocked(r Record) {
	//lint:allow guardedfield -- contract: only called with c.mu held
	j := c.journal
	if j == nil {
		return
	}
	if r.Time == 0 {
		r.Time = c.now().UnixNano()
	}
	j.Append(r)
}

// parentOf names the parent collection of a logical path.
func parentOf(p string) string { return path.Dir(p) }
