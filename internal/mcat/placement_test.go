package mcat

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// journaledPlacer is a three-server placer with an attached journal.
func journaledPlacer(replicas int) (*Placer, *MemJournal) {
	p := NewPlacer(replicas)
	for _, s := range []string{"s0", "s1", "s2"} {
		p.AddServer(s)
	}
	j := NewMemJournal()
	p.SetJournal(j)
	return p, j
}

// replayPlacer rebuilds a fresh placer from the journal, the way a
// restarted MCAT does: register the fleet, replay, attach.
func replayPlacer(j *MemJournal, replicas int) *Placer {
	p := NewPlacer(replicas)
	for _, s := range []string{"s0", "s1", "s2"} {
		p.AddServer(s)
	}
	p.Replay(j.Records())
	p.SetJournal(j)
	return p
}

// placeEverything decides a handful of placements with varied widths.
func placeEverything(t *testing.T, p *Placer) {
	t.Helper()
	for _, c := range []struct {
		path    string
		stripes int
	}{
		{"/fed/a", 3},
		{"/fed/b", 2},
		{"/fed/c", 1},
		{"/fed/wide", 9}, // clamped to the fleet size
	} {
		if _, err := p.Place(c.path, c.stripes); err != nil {
			t.Fatalf("Place(%s, %d): %v", c.path, c.stripes, err)
		}
	}
}

// placementsEqual compares the full placement tables of two placers.
func placementsEqual(t *testing.T, want, got *Placer) {
	t.Helper()
	wp, gp := want.Paths(), got.Paths()
	if !reflect.DeepEqual(wp, gp) {
		t.Fatalf("paths: want %v, got %v", wp, gp)
	}
	for _, path := range wp {
		ws, _ := want.Lookup(path)
		gs, ok := got.Lookup(path)
		if !ok || !reflect.DeepEqual(ws, gs) {
			t.Errorf("%s: want %v, got %v (ok=%v)", path, ws, gs, ok)
		}
	}
}

func TestPlaceIsDeterministicAndStable(t *testing.T) {
	p, _ := journaledPlacer(2)
	sets, err := p.Place("/fed/a", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 3 {
		t.Fatalf("slots = %d, want 3", len(sets))
	}
	primaries := map[string]bool{}
	for _, rs := range sets {
		if len(rs) != 2 {
			t.Fatalf("replica set %v, want size 2", rs)
		}
		if rs[0] == rs[1] {
			t.Fatalf("replica set %v repeats a server", rs)
		}
		primaries[rs.Primary()] = true
	}
	if len(primaries) != 3 {
		t.Fatalf("primaries not spread across the fleet: %v", sets)
	}
	// Asking again — even with a different width — returns the same
	// placement: it is stable for the life of the file.
	again, err := p.Place("/fed/a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sets, again) {
		t.Fatalf("placement changed across calls: %v vs %v", sets, again)
	}
	// An independent placer with the same fleet decides identically —
	// the assignment is a pure function of path and registration order.
	p2, _ := journaledPlacer(2)
	same, err := p2.Place("/fed/a", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sets, same) {
		t.Fatalf("placement not deterministic: %v vs %v", sets, same)
	}
}

func TestPlaceErrors(t *testing.T) {
	empty := NewPlacer(1)
	if _, err := empty.Place("/x", 1); err == nil {
		t.Fatal("placer with no servers accepted a placement")
	}
	p, _ := journaledPlacer(1)
	if _, err := p.Place("relative", 1); err == nil {
		t.Fatal("relative path accepted")
	}
	if _, ok := p.Lookup("/never-placed"); ok {
		t.Fatal("Lookup invented a placement")
	}
}

func TestPlacementReplayRebuildsTable(t *testing.T) {
	p, j := journaledPlacer(2)
	placeEverything(t, p)

	p2 := replayPlacer(j, 2)
	placementsEqual(t, p, p2)
}

func TestPlacementReplayIdempotent(t *testing.T) {
	p, j := journaledPlacer(2)
	placeEverything(t, p)

	// Re-applying a full prefix — the sloppy crash cut — converges.
	p2 := NewPlacer(2)
	for _, s := range []string{"s0", "s1", "s2"} {
		p2.AddServer(s)
	}
	p2.Replay(j.Records())
	p2.Replay(j.Records())
	placementsEqual(t, p, p2)
	if p2.Seq() != p.Seq() {
		t.Fatalf("double replay moved seq: %d vs %d", p2.Seq(), p.Seq())
	}
}

func TestPlacementReplayRestoresSeqHighWater(t *testing.T) {
	p, j := journaledPlacer(1)
	placeEverything(t, p)
	preCrash := p.Seq()
	if preCrash == 0 {
		t.Fatal("no placements journaled")
	}

	p2 := replayPlacer(j, 1)
	if p2.Seq() != preCrash {
		t.Fatalf("seq after replay = %d, want %d", p2.Seq(), preCrash)
	}
	// A post-restart placement journals with a fresh sequence number.
	if _, err := p2.Place("/fed/new", 2); err != nil {
		t.Fatal(err)
	}
	recs := j.Records()
	last := recs[len(recs)-1]
	if last.Op != JPlace || last.Seq != preCrash+1 {
		t.Fatalf("post-restart record = %+v, want seq %d", last, preCrash+1)
	}
}

func TestPlacementReplayNotReJournaled(t *testing.T) {
	p, j := journaledPlacer(2)
	placeEverything(t, p)
	before := j.Len()
	replayPlacer(j, 2)
	if j.Len() != before {
		t.Fatalf("replay grew the journal: %d -> %d", before, j.Len())
	}
}

func TestPlacementJournalTornTail(t *testing.T) {
	p, j := journaledPlacer(2)
	placeEverything(t, p)

	var buf bytes.Buffer
	if _, err := j.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, j.Records()) {
		t.Fatal("text round trip changed records")
	}

	// A torn final line (MCAT crash mid-append) drops only the last
	// placement; replaying the survivors yields a valid table.
	torn := strings.TrimSuffix(buf.String(), "\n")
	torn = torn[:len(torn)-3]
	recs2, err := ReadJournal(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail: %v", err)
	}
	if len(recs2) != len(recs)-1 {
		t.Fatalf("torn tail: %d records, want %d", len(recs2), len(recs)-1)
	}
	p2 := NewPlacer(2)
	for _, s := range []string{"s0", "s1", "s2"} {
		p2.AddServer(s)
	}
	p2.Replay(recs2)
	// The surviving placements match; the torn one is simply re-decided
	// (deterministically, so it lands where it would have anyway).
	for _, path := range p2.Paths() {
		ws, _ := p.Lookup(path)
		gs, _ := p2.Lookup(path)
		if !reflect.DeepEqual(ws, gs) {
			t.Errorf("%s: want %v, got %v", path, ws, gs)
		}
	}
	redecided, err := p2.Place("/fed/wide", 9)
	if err != nil {
		t.Fatal(err)
	}
	original, _ := p.Lookup("/fed/wide")
	if !reflect.DeepEqual(redecided, original) {
		t.Fatalf("re-decided placement diverged: %v vs %v", redecided, original)
	}
}

func TestPlacementRecordRoundTrip(t *testing.T) {
	sets := []ReplicaSet{{"s0", "s1"}, {"s1", "s2"}, {"s2", "s0"}}
	r := Record{Op: JPlace, Path: "/fed/a", Value: EncodePlacement(sets), Seq: 7, Time: 42}
	line := EncodeRecord(nil, r)
	got, err := DecodeRecord(string(line))
	if err != nil {
		t.Fatalf("decode %q: %v", line, err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip:\nwant %+v\ngot  %+v", r, got)
	}
	back, err := DecodePlacement(got.Value)
	if err != nil || !reflect.DeepEqual(back, sets) {
		t.Fatalf("DecodePlacement = %v, %v", back, err)
	}
	for _, bad := range []string{"", "s0,;s1", ";", "s0;;s1"} {
		if _, err := DecodePlacement(bad); err == nil {
			t.Errorf("DecodePlacement(%q) accepted garbage", bad)
		}
	}
}

func TestPlacerDetachStopsAppends(t *testing.T) {
	p, j := journaledPlacer(1)
	if _, err := p.Place("/pre", 1); err != nil {
		t.Fatal(err)
	}
	n := j.Len()
	p.SetJournal(nil) // the crash: a dead MCAT journals nothing
	if _, err := p.Place("/post", 1); err != nil {
		t.Fatal(err)
	}
	if j.Len() != n {
		t.Fatalf("detached placer still journaling: %d -> %d", n, j.Len())
	}
}
