// Package stats holds the small measurement vocabulary shared by the
// workloads and the experiment harness: phase accounting, overlap
// efficiency (the paper's "percentage of maximum expected speedup"),
// bandwidth conversions and printable series.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Phases records how one run's wall time divides between computation and
// I/O, as measured around the respective code sections.
type Phases struct {
	Compute time.Duration
	IO      time.Duration
}

// Total is the serialized (no overlap) duration.
func (p Phases) Total() time.Duration { return p.Compute + p.IO }

// Expected is the best achievable execution time with perfect overlap:
// the larger of the two phases (Section 7.1's model).
func (p Phases) Expected() time.Duration {
	if p.Compute > p.IO {
		return p.Compute
	}
	return p.IO
}

// MaxSpeedup is the speedup a perfect overlap would deliver over fully
// serialized execution.
func (p Phases) MaxSpeedup() float64 {
	e := p.Expected()
	if e == 0 {
		return 1
	}
	return float64(p.Total()) / float64(e)
}

// OverlapEfficiency reports the fraction of the maximum expected speedup a
// measured async run achieved: speedup(sync→async) / maxSpeedup, which
// reduces to expected/async when sync ≈ compute+io.
func OverlapEfficiency(phases Phases, asyncTime time.Duration) float64 {
	if asyncTime <= 0 {
		return 0
	}
	eff := float64(phases.Expected()) / float64(asyncTime)
	if eff > 1 {
		eff = 1
	}
	return eff
}

// Improvement is the relative execution-time reduction going from base to
// opt: (base-opt)/base.
func Improvement(base, opt time.Duration) float64 {
	if base <= 0 {
		return 0
	}
	return float64(base-opt) / float64(base)
}

// MbPerSec converts a byte count over a duration to megabits per second —
// the unit of Figures 8 and 9.
func MbPerSec(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e6 / d.Seconds()
}

// MBPerSec converts to megabytes (2^20) per second.
func MBPerSec(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / d.Seconds()
}

// Series is one plotted line: y values over integer x (processor counts).
type Series struct {
	Label string
	X     []int
	Y     []float64
}

// Add appends a point.
func (s *Series) Add(x int, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// At returns the y value for x, or NaN-like zero and false.
func (s *Series) At(x int) (float64, bool) {
	for i, xi := range s.X {
		if xi == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Mean is the average of the series' y values.
func (s *Series) Mean() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Y {
		sum += v
	}
	return sum / float64(len(s.Y))
}

// MeanRatio returns mean(num.Y/den.Y) over x values both series share —
// the paper's "average improvement" across processor counts.
func MeanRatio(num, den *Series) float64 {
	var sum float64
	var n int
	for i, x := range num.X {
		if d, ok := den.At(x); ok && d != 0 {
			sum += num.Y[i] / d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Table renders series against a shared x column, in the spirit of the
// paper's figures.
func Table(title, xLabel, yLabel string, series ...*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (y: %s)\n", title, yLabel)
	// Collect all x values.
	seen := map[int]bool{}
	for _, s := range series {
		for _, x := range s.X {
			seen[x] = true
		}
	}
	xs := make([]int, 0, len(seen))
	for x := range seen {
		xs = append(xs, x)
	}
	sort.Ints(xs)

	fmt.Fprintf(&b, "%-8s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%22s", s.Label)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-8d", x)
		for _, s := range series {
			if y, ok := s.At(x); ok {
				fmt.Fprintf(&b, "%22.2f", y)
			} else {
				fmt.Fprintf(&b, "%22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
