package stats

import (
	"math"
	"testing"
	"time"
)

// Edge cases for the phase model and the derived ratios: the simulator
// occasionally produces degenerate runs (an all-compute warmup, an
// instantaneous I/O phase, a measured async time faster than the model's
// floor), and every ratio here must degrade to a sane bounded value
// instead of Inf/NaN leaking into the figure tables.

func TestPhasesEdgeCases(t *testing.T) {
	tests := []struct {
		name     string
		p        Phases
		total    time.Duration
		expected time.Duration
		speedup  float64
	}{
		{
			name:     "zero phases",
			p:        Phases{},
			total:    0,
			expected: 0,
			speedup:  1, // no work: nothing to overlap, speedup is neutral
		},
		{
			name:     "compute only",
			p:        Phases{Compute: 3 * time.Second},
			total:    3 * time.Second,
			expected: 3 * time.Second,
			speedup:  1, // no I/O to hide: overlap buys nothing
		},
		{
			name:     "io only",
			p:        Phases{IO: 3 * time.Second},
			total:    3 * time.Second,
			expected: 3 * time.Second,
			speedup:  1, // no compute to hide behind
		},
		{
			name:     "perfectly balanced",
			p:        Phases{Compute: 2 * time.Second, IO: 2 * time.Second},
			total:    4 * time.Second,
			expected: 2 * time.Second,
			speedup:  2, // the model's ceiling
		},
		{
			name:     "io dominant",
			p:        Phases{Compute: time.Second, IO: 9 * time.Second},
			total:    10 * time.Second,
			expected: 9 * time.Second,
			speedup:  10.0 / 9.0,
		},
		{
			name:     "nanosecond phases",
			p:        Phases{Compute: 1, IO: 1},
			total:    2,
			expected: 1,
			speedup:  2,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Total(); got != tt.total {
				t.Errorf("Total() = %v, want %v", got, tt.total)
			}
			if got := tt.p.Expected(); got != tt.expected {
				t.Errorf("Expected() = %v, want %v", got, tt.expected)
			}
			got := tt.p.MaxSpeedup()
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("MaxSpeedup() = %v, want finite", got)
			}
			if math.Abs(got-tt.speedup) > 1e-9 {
				t.Errorf("MaxSpeedup() = %v, want %v", got, tt.speedup)
			}
		})
	}
}

func TestMaxSpeedupBounds(t *testing.T) {
	// Whatever the phase split, the model never promises more than 2x
	// (perfect overlap of two phases) and never less than 1x.
	for _, p := range []Phases{
		{},
		{Compute: time.Nanosecond},
		{IO: time.Hour},
		{Compute: time.Millisecond, IO: time.Hour},
		{Compute: time.Hour, IO: time.Hour},
		{Compute: 7 * time.Second, IO: 5 * time.Second},
	} {
		got := p.MaxSpeedup()
		if got < 1 || got > 2 {
			t.Errorf("MaxSpeedup(%+v) = %v, want within [1,2]", p, got)
		}
	}
}

func TestOverlapEfficiencyEdgeCases(t *testing.T) {
	base := Phases{Compute: 4 * time.Second, IO: time.Second}
	tests := []struct {
		name  string
		p     Phases
		async time.Duration
		want  float64
	}{
		{
			// A measured time below the theoretical floor (timer jitter,
			// cache effects) must clamp to 1, not report >100%.
			name:  "faster than theoretical clamps to 1",
			p:     base,
			async: 2 * time.Second,
			want:  1,
		},
		{
			name:  "exactly theoretical",
			p:     base,
			async: 4 * time.Second,
			want:  1,
		},
		{
			name:  "zero async time",
			p:     base,
			async: 0,
			want:  0,
		},
		{
			name:  "negative async time",
			p:     base,
			async: -time.Second,
			want:  0,
		},
		{
			// Zero phases with a real measured time: 0/async = 0.
			name:  "zero phases",
			p:     Phases{},
			async: time.Second,
			want:  0,
		},
		{
			// Both degenerate: the zero-async guard wins.
			name:  "zero phases and zero async",
			p:     Phases{},
			async: 0,
			want:  0,
		},
		{
			name:  "half efficiency",
			p:     base,
			async: 8 * time.Second,
			want:  0.5,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := OverlapEfficiency(tt.p, tt.async)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("OverlapEfficiency = %v, want finite", got)
			}
			if got < 0 || got > 1 {
				t.Fatalf("OverlapEfficiency = %v, want within [0,1]", got)
			}
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("OverlapEfficiency = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestImprovementEdgeCases(t *testing.T) {
	tests := []struct {
		name      string
		base, opt time.Duration
		want      float64
	}{
		{"zero base", 0, time.Second, 0},
		{"negative base", -time.Second, time.Second, 0},
		{"no change", time.Second, time.Second, 0},
		{"regression goes negative", time.Second, 2 * time.Second, -1},
		{"full elimination", time.Second, 0, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Improvement(tt.base, tt.opt)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("Improvement = %v, want finite", got)
			}
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("Improvement(%v, %v) = %v, want %v", tt.base, tt.opt, got, tt.want)
			}
		})
	}
}
