package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestPhases(t *testing.T) {
	p := Phases{Compute: 4 * time.Second, IO: 1 * time.Second}
	if p.Total() != 5*time.Second {
		t.Fatal("total")
	}
	if p.Expected() != 4*time.Second {
		t.Fatal("expected")
	}
	if got := p.MaxSpeedup(); math.Abs(got-1.25) > 1e-9 {
		t.Fatalf("max speedup = %v", got)
	}
	// A perfectly balanced application can improve by up to 50%.
	bal := Phases{Compute: time.Second, IO: time.Second}
	if got := bal.MaxSpeedup(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("balanced speedup = %v", got)
	}
	if (Phases{}).MaxSpeedup() != 1 {
		t.Fatal("zero phases")
	}
}

func TestOverlapEfficiency(t *testing.T) {
	p := Phases{Compute: 4 * time.Second, IO: 1 * time.Second}
	if got := OverlapEfficiency(p, 4*time.Second); got != 1 {
		t.Fatalf("perfect overlap eff = %v", got)
	}
	if got := OverlapEfficiency(p, 5*time.Second); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("no-overlap eff = %v", got)
	}
	// Faster than theoretical caps at 1.
	if got := OverlapEfficiency(p, time.Second); got != 1 {
		t.Fatalf("capped eff = %v", got)
	}
	if OverlapEfficiency(p, 0) != 0 {
		t.Fatal("zero async time")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(10*time.Second, 8*time.Second); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("improvement = %v", got)
	}
	if Improvement(0, time.Second) != 0 {
		t.Fatal("zero base")
	}
}

func TestBandwidthUnits(t *testing.T) {
	// 1 MB in 1s = 8 Mb/s.
	if got := MbPerSec(1e6, time.Second); math.Abs(got-8) > 1e-9 {
		t.Fatalf("MbPerSec = %v", got)
	}
	if got := MBPerSec(1<<20, time.Second); math.Abs(got-1) > 1e-9 {
		t.Fatalf("MBPerSec = %v", got)
	}
	if MbPerSec(100, 0) != 0 || MBPerSec(100, 0) != 0 {
		t.Fatal("zero duration")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Label = "sync"
	s.Add(2, 10)
	s.Add(4, 20)
	if v, ok := s.At(4); !ok || v != 20 {
		t.Fatalf("At = %v, %v", v, ok)
	}
	if _, ok := s.At(99); ok {
		t.Fatal("missing x found")
	}
	if s.Mean() != 15 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if (&Series{}).Mean() != 0 {
		t.Fatal("empty mean")
	}
}

func TestMeanRatio(t *testing.T) {
	two := &Series{X: []int{1, 2, 3}, Y: []float64{2, 4, 6}}
	one := &Series{X: []int{1, 2, 3}, Y: []float64{1, 2, 3}}
	if got := MeanRatio(two, one); math.Abs(got-2) > 1e-9 {
		t.Fatalf("ratio = %v", got)
	}
	// Disjoint x: no ratio.
	other := &Series{X: []int{9}, Y: []float64{1}}
	if MeanRatio(two, other) != 0 {
		t.Fatal("disjoint series")
	}
}

func TestTable(t *testing.T) {
	a := &Series{Label: "sync", X: []int{2, 4}, Y: []float64{1.5, 2.5}}
	b := &Series{Label: "async", X: []int{2}, Y: []float64{1.25}}
	out := Table("Fig X", "np", "seconds", a, b)
	for _, want := range []string{"Fig X", "np", "sync", "async", "1.50", "1.25", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
